(* Whole-pipeline fuzzing: generate random well-typed SGL programs, then
   check that

   1. the typechecker accepts them and the pretty-printer round-trips,
   2. the reference interpreter, the naive set-at-a-time executor, the
      indexed executor (shared and unshared trees), and the unoptimized
      plans all compute the *same* effects on random integer-lattice
      armies.

   The generators deliberately produce every language feature: all
   aggregate kinds, defaults, u-dependent residuals (forcing enumeration),
   constant and per-unit ranges (sweep vs fallback), self / key / all
   effect targets, e-dependent area updates (forcing the naive AoE path),
   Random in effects, nested conditionals, and helper-script performs. *)

open Sgl_relalg
open Sgl_lang
open Sgl_qopt
open Sgl_util

let schema () = Test_lang.schema ()

(* ------------------------------------------------------------------ *)
(* Generators *)

open QCheck.Gen

let pos = Ast.no_pos

(* a numeric term over the unit record and the bound variables *)
let rec gen_num_term (vars : string list) depth : Ast.term t =
  if depth = 0 then
    oneof
      [
        map (fun i -> Ast.T_int i) (int_range (-5) 5);
        map (fun f -> Ast.T_float (float_of_int f)) (int_range (-5) 5);
        oneofl
          [
            Ast.T_dot (Ast.T_var ("u", pos), "posx", pos);
            Ast.T_dot (Ast.T_var ("u", pos), "posy", pos);
            Ast.T_dot (Ast.T_var ("u", pos), "health", pos);
            Ast.T_dot (Ast.T_var ("u", pos), "morale", pos);
          ];
      ]
  else
    frequency
      [
        (2, gen_num_term vars 0);
        ( 2,
          let* op = oneofl [ Expr.Add; Expr.Sub; Expr.Mul ] in
          let* a = gen_num_term vars (depth - 1) in
          let* b = gen_num_term vars (depth - 1) in
          return (Ast.T_binop (op, a, b)) );
        ( 1,
          let* a = gen_num_term vars (depth - 1) in
          return (Ast.T_call ("abs", [ a ], pos)) );
        ( 1,
          let* a = gen_num_term vars (depth - 1) in
          let* b = gen_num_term vars (depth - 1) in
          return (Ast.T_call ("max", [ a; b ], pos)) );
        ( 1,
          match List.filter (fun v -> String.length v > 4 && String.sub v 0 4 = "num_") vars with
          | [] -> gen_num_term vars 0
          | nums -> map (fun v -> Ast.T_var (v, pos)) (oneofl nums) );
      ]

let gen_condition (vars : string list) depth : Ast.term t =
  let* op = oneofl [ Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.Eq; Expr.Ne ] in
  let* a = gen_num_term vars depth in
  let* b = gen_num_term vars depth in
  return (Ast.T_cmp (op, a, b))

(* conjuncts over (u, e) for aggregate bodies: boxes, categorical tests,
   data filters, and u-dependent residuals *)
let gen_agg_where : Ast.term option t =
  let e field = Ast.T_dot (Ast.T_var ("e", pos), field, pos) in
  let u field = Ast.T_dot (Ast.T_var ("u", pos), field, pos) in
  let box range =
    Ast.T_and
      ( Ast.T_and
          ( Ast.T_cmp (Expr.Ge, e "posx", Ast.T_binop (Expr.Sub, u "posx", range)),
            Ast.T_cmp (Expr.Le, e "posx", Ast.T_binop (Expr.Add, u "posx", range)) ),
        Ast.T_and
          ( Ast.T_cmp (Expr.Ge, e "posy", Ast.T_binop (Expr.Sub, u "posy", range)),
            Ast.T_cmp (Expr.Le, e "posy", Ast.T_binop (Expr.Add, u "posy", range)) ) )
  in
  let* conjuncts =
    flatten_l
      [
        (* box: none / constant range (sweep-able) / per-unit range *)
        oneofl
          [ []; [ box (Ast.T_float 8.) ]; [ box (Ast.T_float 15.) ]; [ box (u "range") ] ];
        (* categorical *)
        oneofl
          [
            [];
            [ Ast.T_cmp (Expr.Ne, e "player", u "player") ];
            [ Ast.T_cmp (Expr.Eq, e "player", u "player") ];
            [ Ast.T_cmp (Expr.Eq, e "morale", Ast.T_int 1) ];
          ];
        (* data filter (e only) *)
        oneofl [ []; [ Ast.T_cmp (Expr.Gt, e "health", Ast.T_int 40) ] ];
        (* u-dependent residual: forces the enumeration path *)
        oneofl [ []; []; [ Ast.T_cmp (Expr.Gt, e "health", u "health") ] ];
      ]
  in
  match List.concat conjuncts with
  | [] -> return None
  | c :: rest -> return (Some (List.fold_left (fun acc x -> Ast.T_and (acc, x)) c rest))

type agg_sig = { aname : string; result : [ `Num | `Vec ] }

let gen_aggregate (i : int) : (Ast.decl * agg_sig) t =
  let e field = Ast.T_dot (Ast.T_var ("e", pos), field, pos) in
  let u field = Ast.T_dot (Ast.T_var ("u", pos), field, pos) in
  let name = Printf.sprintf "Agg%d" i in
  let* where_ = gen_agg_where in
  let* choice = int_range 0 7 in
  let components, default, result =
    match choice with
    | 0 -> ([ Ast.G_count ], None, `Num)
    | 1 -> ([ Ast.G_sum (e "health") ], None, `Num)
    | 2 -> ([ Ast.G_avg (e "posx") ], Some (u "posx"), `Num)
    | 3 -> ([ Ast.G_stddev (e "posy") ], Some (Ast.T_float 0.), `Num)
    | 4 -> ([ Ast.G_min (e "health") ], Some (Ast.T_int 0), `Num)
    | 5 -> ([ Ast.G_argmin (e "health", e "key") ], Some (Ast.T_int (-1)), `Num)
    | 6 ->
      ( [ Ast.G_nearest (e "posx", e "posy", u "posx", u "posy", e "key") ],
        Some (Ast.T_int (-1)),
        `Num )
    | _ ->
      ( [ Ast.G_avg (e "posx"); Ast.G_avg (e "posy") ],
        Some (Ast.T_vec (u "posx", u "posy")),
        `Vec )
  in
  return
    ( Ast.D_aggregate { name; params = [ "u" ]; components; where_; default; pos },
      { aname = name; result } )

(* Action declarations exercising all three effect targets. *)
let gen_action (i : int) : (Ast.decl * [ `Plain | `Keyed ]) t =
  let e field = Ast.T_dot (Ast.T_var ("e", pos), field, pos) in
  let u field = Ast.T_dot (Ast.T_var ("u", pos), field, pos) in
  let name = Printf.sprintf "Act%d" i in
  let* choice = int_range 0 4 in
  let decl, kind =
    match choice with
    | 0 ->
      (* move by a u-derived vector *)
      ( Ast.D_action
          {
            name;
            params = [ "u" ];
            clauses =
              [
                {
                  Ast.target = Ast.E_self;
                  updates =
                    [
                      ("movevect_x", Ast.T_binop (Expr.Sub, u "posx", Ast.T_int 1));
                      ("movevect_y", Ast.T_int 1);
                    ];
                };
              ];
            pos;
          },
        `Plain )
    | 1 ->
      (* randomized strike on a chosen key, damage reads the target *)
      ( Ast.D_action
          {
            name;
            params = [ "u"; "k" ];
            clauses =
              [
                {
                  Ast.target = Ast.E_key (Ast.T_var ("k", pos));
                  updates =
                    [
                      ( "damage",
                        Ast.T_binop
                          ( Expr.Add,
                            Ast.T_binop
                              (Expr.Mod, Ast.T_call ("random", [ Ast.T_int 1 ], pos), Ast.T_int 5),
                            e "morale" ) );
                    ];
                };
                { Ast.target = Ast.E_self; updates = [ ("weaponused", Ast.T_int 1) ] };
              ];
            pos;
          },
        `Keyed )
    | 2 ->
      (* indexable aura: constant contribution, sum + max attrs *)
      ( Ast.D_action
          {
            name;
            params = [ "u" ];
            clauses =
              [
                {
                  Ast.target =
                    Ast.E_all
                      (Ast.T_and
                         ( Ast.T_cmp (Expr.Eq, e "player", u "player"),
                           Ast.T_and
                             ( Ast.T_and
                                 ( Ast.T_cmp
                                     (Expr.Ge, e "posx", Ast.T_binop (Expr.Sub, u "posx", Ast.T_float 6.)),
                                   Ast.T_cmp
                                     (Expr.Le, e "posx", Ast.T_binop (Expr.Add, u "posx", Ast.T_float 6.)) ),
                               Ast.T_and
                                 ( Ast.T_cmp
                                     (Expr.Ge, e "posy", Ast.T_binop (Expr.Sub, u "posy", Ast.T_float 6.)),
                                   Ast.T_cmp
                                     (Expr.Le, e "posy", Ast.T_binop (Expr.Add, u "posy", Ast.T_float 6.)) ) ) ));
                  updates = [ ("inaura", Ast.T_int 7); ("damage", Ast.T_int 2) ];
                };
              ];
            pos;
          },
        `Plain )
    | 3 ->
      (* e-dependent area update: must take the pairwise fallback *)
      ( Ast.D_action
          {
            name;
            params = [ "u" ];
            clauses =
              [
                {
                  Ast.target = Ast.E_all (Ast.T_cmp (Expr.Ne, e "player", u "player"));
                  updates = [ ("damage", Ast.T_binop (Expr.Mod, e "key", Ast.T_int 3)) ];
                };
              ];
            pos;
          },
        `Plain )
    | _ ->
      (* u-derived self effect with randomness *)
      ( Ast.D_action
          {
            name;
            params = [ "u" ];
            clauses =
              [
                {
                  Ast.target = Ast.E_self;
                  updates =
                    [
                      ( "inaura",
                        Ast.T_binop
                          (Expr.Mod, Ast.T_call ("random", [ Ast.T_int 2 ], pos), Ast.T_int 4) );
                    ];
                };
              ];
            pos;
          },
        `Plain )
  in
  return (decl, kind)

(* Script bodies: lets binding aggregates and numeric terms, conditionals
   (possibly with aggregate calls in the condition, exercising Normalize),
   sequences and performs. *)
let gen_script ~(aggs : agg_sig list) ~(actions : (string * [ `Plain | `Keyed ]) list) :
    Ast.action t =
  let rec go vars depth =
    let leafs =
      let perform =
        let* name, kind = oneofl actions in
        match kind with
        | `Plain -> return (Ast.A_perform (name, [ Ast.T_var ("u", pos) ], pos))
        | `Keyed ->
          let keys =
            List.filter (fun v -> String.length v > 4 && String.sub v 0 4 = "num_") vars
          in
          let* key_term =
            if keys = [] then return (Ast.T_int 0) else map (fun v -> Ast.T_var (v, pos)) (oneofl keys)
          in
          return (Ast.A_perform (name, [ Ast.T_var ("u", pos); key_term ], pos))
      in
      [ (3, perform); (1, return Ast.A_skip) ]
    in
    if depth = 0 then frequency leafs
    else
      frequency
        (leafs
        @ [
            ( 3,
              (* let over an aggregate (num or vec) *)
              let* a = oneofl aggs in
              let v =
                (match a.result with `Num -> "num_" | `Vec -> "vec_") ^ a.aname
                ^ string_of_int depth
              in
              if List.mem v vars then frequency leafs
              else begin
                let* body = go (v :: vars) (depth - 1) in
                return
                  (Ast.A_let (v, Ast.T_call (a.aname, [ Ast.T_var ("u", pos) ], pos), body))
              end );
            ( 2,
              let num_aggs = List.filter (fun a -> a.result = `Num) aggs in
              let agg_cond =
                (* aggregate call in the condition: Normalize hoists *)
                let* a = oneofl num_aggs in
                let* threshold = int_range 0 5 in
                return
                  (Ast.T_cmp
                     ( Expr.Gt,
                       Ast.T_call (a.aname, [ Ast.T_var ("u", pos) ], pos),
                       Ast.T_int threshold ))
              in
              let* cond =
                frequency
                  ((3, gen_condition vars 1) :: (if num_aggs = [] then [] else [ (1, agg_cond) ]))
              in
              let* then_a = go vars (depth - 1) in
              let* else_a = go vars (depth - 1) in
              return (Ast.A_if (cond, then_a, else_a)) );
            ( 1,
              let* a = go vars (depth - 1) in
              let* b = go vars (depth - 1) in
              return (Ast.A_seq (a, b)) );
          ])
  in
  go [] 3

let gen_program : Ast.program t =
  let* n_aggs = int_range 1 4 in
  let* aggs = flatten_l (List.init n_aggs gen_aggregate) in
  let* n_actions = int_range 1 3 in
  let* actions = flatten_l (List.init n_actions gen_action) in
  let agg_sigs = List.map snd aggs in
  let action_sigs =
    List.map (fun (d, kind) -> (Ast.decl_name d, kind)) actions
  in
  let* body = gen_script ~aggs:agg_sigs ~actions:action_sigs in
  return
    (List.map fst aggs @ List.map fst actions
    @ [ Ast.D_script { name = "main"; params = [ "u" ]; body; pos } ])

let arb_program =
  QCheck.make ~print:(fun p -> Pretty.program_to_string p) gen_program

(* ------------------------------------------------------------------ *)
(* Properties *)

let no_rand_key ~key i = Prng.script_random (Prng.create 123) ~tick:0 ~key i

let pipeline_accepts =
  QCheck.Test.make ~name:"fuzz: generated programs typecheck and round-trip" ~count:60
    arb_program
    (fun prog ->
      let s = schema () in
      Typecheck.check ~schema:s prog;
      (* concrete-syntax round trip *)
      let printed = Pretty.program_to_string prog in
      let reparsed = Parser.parse_string printed in
      Pretty.strip_program (Pretty.canon_program reparsed)
      = Pretty.strip_program (Pretty.canon_program prog))

let four_way_equivalence =
  QCheck.Test.make ~name:"fuzz: interp = naive = indexed = unshared = unoptimized" ~count:40
    (QCheck.pair arb_program (QCheck.int_range 0 1000))
    (fun (ast, seed) ->
      let s = schema () in
      let prog = Compile.compile_ast ~schema:s ast in
      let units = Test_qopt.random_units s ~n:35 ~seed:(seed + 1) in
      let prng = Prng.create (seed + 5000) in
      let rand_for_key ~key i = Prng.script_random prng ~tick:0 ~key i in
      let rand_for u i = rand_for_key ~key:(Tuple.key s u) i in
      let reference =
        Test_qopt.normalize_effects s
          (Combine.combine
             (Interp.run_script ~prog
                ~script:(Option.get (Core_ir.find_script prog "main"))
                ~units ~rand_for))
      in
      let exec ~optimize ev =
        let compiled = Exec.compile ~optimize prog in
        let groups =
          [ { Exec.script = "main"; members = Array.init (Array.length units) (fun i -> i) } ]
        in
        Test_qopt.normalize_effects s
          (Combine.Acc.to_relation
             (Exec.run_tick compiled ~evaluator:ev ~units ~groups ~rand_for:rand_for_key))
      in
      let naive = exec ~optimize:true (Eval.naive ~schema:s ~aggregates:prog.Core_ir.aggregates) in
      let indexed =
        exec ~optimize:true (Eval.indexed ~schema:s ~aggregates:prog.Core_ir.aggregates ())
      in
      let unshared =
        exec ~optimize:true
          (Eval.indexed ~share:false ~schema:s ~aggregates:prog.Core_ir.aggregates ())
      in
      let unoptimized =
        exec ~optimize:false (Eval.indexed ~schema:s ~aggregates:prog.Core_ir.aggregates ())
      in
      Relation.equal_as_multiset reference naive
      && Relation.equal_as_multiset reference indexed
      && Relation.equal_as_multiset reference unshared
      && Relation.equal_as_multiset reference unoptimized)

(* Full-simulation differential fuzzing for the parallel decision phase:
   random scripts driven for 20 ticks under [Naive] and under
   [Parallel { domains = 3 }] from the same seed must leave identical
   unit states.  Random movement, deaths and key-targeted effects all
   flow through the chunk merge; on failure QCheck prints the generated
   script. *)
let parallel_sim_equivalence =
  QCheck.Test.make ~name:"fuzz: 20-tick simulation, naive = parallel:3" ~count:25
    (QCheck.pair arb_program (QCheck.int_range 0 1000))
    (fun (ast, seed) ->
      let s = schema () in
      let prog = Compile.compile_ast ~schema:s ast in
      let units = Test_qopt.random_units s ~n:30 ~seed:(seed + 1) in
      let config =
        {
          Sgl_engine.Simulation.prog;
          script_of = (fun _ -> Some "main");
          postprocess =
            Sgl_engine.Postprocess.make ~schema:s ~updates:[]
              ~remove_when:(Expr.Const (Value.Bool false));
          movement =
            Some
              {
                Sgl_engine.Movement.posx = Schema.find s "posx";
                posy = Schema.find s "posy";
                mvx = Schema.find s "movevect_x";
                mvy = Schema.find s "movevect_y";
                speed = 3.;
                speed_attr = None;
                width = 64;
                height = 64;
              };
          death = Sgl_engine.Simulation.Remove;
          seed = seed + 9000;
          optimize = true;
        }
      in
      let final evaluator =
        let sim = Sgl_engine.Simulation.create config ~evaluator ~units in
        Sgl_engine.Simulation.run sim ~ticks:20;
        let out = Array.map Tuple.copy (Sgl_engine.Simulation.units sim) in
        Array.sort (fun a b -> compare (Tuple.key s a) (Tuple.key s b)) out;
        out
      in
      let naive = final Sgl_engine.Simulation.Naive in
      let parallel = final (Sgl_engine.Simulation.Parallel { domains = 3 }) in
      compare naive parallel = 0)

let _ = no_rand_key

let suite =
  [
    ( "fuzz.pipeline",
      [ QCheck_alcotest.to_alcotest pipeline_accepts;
        QCheck_alcotest.to_alcotest four_way_equivalence;
        QCheck_alcotest.to_alcotest parallel_sim_equivalence ] );
  ]
