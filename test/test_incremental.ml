(* The cross-tick index structure cache: differential, fault-injection and
   fuzz coverage for the delta-driven incremental maintenance path.

   The contract under test: with the cache on, every evaluator probes
   structures that may have been carried over from the previous tick and
   revalidated against that tick's delta summary — and the unit states are
   *bit-identical* to both a cache-off run and a naive scan, tick for tick,
   including under the transactional fault policies (a rolled-back tick
   must not leave a stale structure behind for the retry to observe).

   The other half of the contract is the delta summary itself:
   over-reporting is sound, under-reporting is a correctness bug.  The
   covers tests pin it against the ground-truth diff of unit snapshots. *)

open Sgl_util
open Sgl_relalg
open Sgl_engine
open Sgl_battle

let with_injection f = Fun.protect ~finally:Fault_inject.reset f

let sorted_units (sim : Simulation.t) =
  let s = Simulation.schema sim in
  let out = Array.map Tuple.copy (Simulation.units sim) in
  Array.sort (fun a b -> compare (Tuple.key s a) (Tuple.key s b)) out;
  out

let check_states ~(msg : string) expected got =
  Alcotest.(check int) (msg ^ ": population") (Array.length expected) (Array.length got);
  Array.iteri
    (fun i e ->
      if compare e got.(i) <> 0 then
        Alcotest.failf "%s: unit %d diverged@.expected %s@.got      %s" msg i
          (Fmt.str "%a" Tuple.pp e)
          (Fmt.str "%a" Tuple.pp got.(i)))
    expected

(* ------------------------------------------------------------------ *)
(* The sentry scenario: a mostly static army watched by a few scouts whose
   aggregate counts feed persistent state through a threshold.  Churn is
   confined to one categorical partition (player 1), so a correct cache
   reuses the statics' structures while wrong revalidation — a stale count
   flipping the threshold — shows up in [sightings] immediately. *)

let sentry_schema () =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "player" Value.TInt;
      Schema.attr "posx" Value.TFloat;
      Schema.attr "posy" Value.TFloat;
      Schema.attr "sightings" Value.TInt;
      Schema.attr ~tag:Schema.Sum "movevect_x" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_y" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "seen" Value.TInt;
    ]

let sentry_behaviour =
  {|
aggregate NearRivals(u) {
  count(*) where e.player <> u.player
    and e.posx >= u.posx - 30.0 and e.posx <= u.posx + 30.0
    and e.posy >= u.posy - 30.0 and e.posy <= u.posy + 30.0
}

action Mark(u) { on self { seen <- 1; } }

action Wander(u) {
  on self {
    movevect_x <- (random(11) mod 5) - 2;
    movevect_y <- (random(12) mod 5) - 2;
  }
}

script scout(u) {
  let c = NearRivals(u);
  if c >= THRESH then { perform Mark(u); }
}

script wanderer(u) {
  if (random(13) mod 100) < CHURN then { perform Wander(u); }
}
|}

let sentry_units schema ~(n : int) : Tuple.t array =
  let make ~key ~player ~x ~y =
    Tuple.of_list schema
      [
        Value.Int key; Value.Int player; Value.Float x; Value.Float y; Value.Int 0;
        Value.Float 0.; Value.Float 0.; Value.Int 0;
      ]
  in
  (* one grid row per unit: collisions cannot depend on anything but the
     decided vectors, and y-boxes see varying populations per scout *)
  Array.init n (fun i ->
      let y = float_of_int i in
      if i mod 15 = 0 then make ~key:i ~player:0 ~x:250. ~y
      else if i mod 4 = 1 then make ~key:i ~player:1 ~x:(float_of_int (100 + (i mod 80))) ~y
      else make ~key:i ~player:2 ~x:(float_of_int (180 + (i * 13 mod 200))) ~y)

let sentry_sim ?(churn = 10) ?(thresh = 3) ?(seed = 5) ?(index_cache = true) ~(n : int)
    (evaluator : Simulation.evaluator_kind) : Simulation.t =
  let schema = sentry_schema () in
  let prog =
    Sgl_lang.Compile.compile
      ~consts:[ ("THRESH", Value.Int thresh); ("CHURN", Value.Int churn) ]
      ~schema sentry_behaviour
  in
  let player = Schema.find schema "player" in
  let sightings = Schema.find schema "sightings" and seen = Schema.find schema "seen" in
  let open Expr in
  let config =
    {
      Simulation.prog;
      script_of =
        (fun u ->
          match Value.to_int (Tuple.get u player) with
          | 0 -> Some "scout"
          | 1 -> Some "wanderer"
          | _ -> None (* statics: their partition's structures never go stale *));
      postprocess =
        Postprocess.make ~schema
          ~updates:[ (sightings, Binop (Add, UAttr sightings, EAttr seen)) ]
          ~remove_when:(Const (Value.Bool false));
      movement =
        Some
          {
            Movement.posx = Schema.find schema "posx";
            posy = Schema.find schema "posy";
            mvx = Schema.find schema "movevect_x";
            mvy = Schema.find schema "movevect_y";
            speed = 2.;
            speed_attr = None;
            width = 512;
            height = n;
          };
      death = Simulation.Remove;
      seed;
      optimize = true;
    }
  in
  Simulation.create ~index_cache config ~evaluator ~units:(sentry_units schema ~n)

(* ------------------------------------------------------------------ *)
(* Differential: cache on = cache off = naive, across evaluators *)

(* Run one scenario maker under every (evaluator, cache) combination and
   insist on identical states after [ticks]. *)
let cache_differential ~(ticks : int)
    ~(make_sim : index_cache:bool -> Simulation.evaluator_kind -> Simulation.t) : unit =
  let run ~index_cache evaluator =
    let sim = make_sim ~index_cache evaluator in
    Simulation.run sim ~ticks;
    Alcotest.(check int) "tick count" ticks (Simulation.tick_count sim);
    sim
  in
  let baseline = sorted_units (run ~index_cache:true Simulation.Naive) in
  let warm = run ~index_cache:true Simulation.Indexed in
  check_states ~msg:"indexed cached vs naive" baseline (sorted_units warm);
  Alcotest.(check bool) "the cache actually engaged" true
    ((Simulation.report warm).Simulation.index_reuses > 0);
  check_states ~msg:"indexed cold vs naive" baseline
    (sorted_units (run ~index_cache:false Simulation.Indexed));
  List.iter
    (fun domains ->
      check_states
        ~msg:(Fmt.str "parallel:%d cached vs naive" domains)
        baseline
        (sorted_units (run ~index_cache:true (Simulation.Parallel { domains })));
      check_states
        ~msg:(Fmt.str "parallel:%d cold vs naive" domains)
        baseline
        (sorted_units (run ~index_cache:false (Simulation.Parallel { domains }))))
    [ 1; 3 ]

let battle_cache_differential () =
  cache_differential ~ticks:50 ~make_sim:(fun ~index_cache evaluator ->
      let scenario = Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 50) () in
      Scenario.simulation ~seed:11 ~index_cache ~evaluator scenario)

let sentry_cache_differential () =
  cache_differential ~ticks:60 ~make_sim:(fun ~index_cache evaluator ->
      sentry_sim ~churn:5 ~index_cache ~n:120 evaluator)

(* ------------------------------------------------------------------ *)
(* The delta summary covers the ground truth *)

(* Step a cached simulation and, each tick, check the recorded summary
   against the diff of unit snapshots ([Delta.of_tuples]): every change the
   truth reports must be accounted for.  Over-reporting passes (it only
   costs rebuilds); a missed attribute/key or an unreported population
   change fails. *)
let covers_ground_truth ~(ticks : int) (sim : Simulation.t) : unit =
  let schema = Simulation.schema sim in
  for tick = 1 to ticks do
    let before = Array.map Tuple.copy (Simulation.units sim) in
    Simulation.step sim;
    let truth = Delta.of_tuples ~schema ~before ~after:(Simulation.units sim) in
    match Simulation.last_delta sim with
    | None -> Alcotest.failf "tick %d: cached simulation committed no delta summary" tick
    | Some summary ->
      if not (Delta.covers ~summary ~truth) then
        Alcotest.failf "tick %d: summary %a does not cover truth %a" tick Delta.pp summary
          Delta.pp truth
  done

let sentry_delta_covers () =
  (* no deaths: every tick is non-structural, so per-attribute/per-key
     coverage carries the whole weight *)
  covers_ground_truth ~ticks:40 (sentry_sim ~churn:20 ~n:100 Simulation.Indexed)

let battle_delta_covers () =
  (* deaths and resurrections: the structural flag must be raised whenever
     the population is rewritten *)
  let scenario = Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 40) () in
  covers_ground_truth ~ticks:30 (Scenario.simulation ~seed:7 ~evaluator:Simulation.Indexed scenario)

(* ------------------------------------------------------------------ *)
(* Cache lifecycle under the fault policies *)

let battle_sim_for_faults ?fault_policy ?index_cache ~evaluator () =
  let scenario = Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 40) () in
  Scenario.simulation ~seed:11 ?fault_policy ?index_cache ~evaluator scenario

(* Degrade with the cache on: the faulting tick rolls back (discarding its
   half-recorded delta), the evaluator is demoted, and the retry must be
   bit-identical to a healthy run of the weaker evaluator — no stale
   structure from the abandoned attempt may survive into it. *)
let degrade_with_cache () =
  let clean =
    let sim = battle_sim_for_faults ~index_cache:true ~evaluator:Simulation.Naive () in
    Simulation.run sim ~ticks:40;
    sorted_units sim
  in
  with_injection (fun () ->
      Fault_inject.arm ~point:"eval.member" (Fault_inject.At_count 200);
      let sim =
        battle_sim_for_faults ~index_cache:true ~fault_policy:Simulation.Degrade
          ~evaluator:Simulation.Indexed ()
      in
      Simulation.run sim ~ticks:40;
      Alcotest.(check int) "all ticks ran" 40 (Simulation.tick_count sim);
      Alcotest.(check string) "demoted to naive" "naive"
        (Simulation.evaluator_name (Simulation.current_evaluator sim));
      Alcotest.(check bool) "demotion happened mid-run" true
        (match Simulation.degradations sim with [ (t, _, _) ] -> t > 0 | _ -> false);
      check_states ~msg:"degraded cached vs clean naive" clean (sorted_units sim))

(* Quarantine with the cache on vs off: the same injection schedule must
   quarantine the same group and land on the same states — group guards and
   structure reuse are orthogonal. *)
let quarantine_cache_parity () =
  let run ~index_cache =
    with_injection (fun () ->
        Fault_inject.arm ~point:"exec.group" (Fault_inject.At_count 7);
        let sim =
          battle_sim_for_faults ~index_cache ~fault_policy:Simulation.Quarantine_script
            ~evaluator:Simulation.Indexed ()
        in
        Simulation.run sim ~ticks:25;
        Alcotest.(check int) "all ticks ran" 25 (Simulation.tick_count sim);
        (Simulation.quarantined_scripts sim, sorted_units sim))
  in
  let quarantined_warm, warm = run ~index_cache:true in
  let quarantined_cold, cold = run ~index_cache:false in
  Alcotest.(check (list string)) "same group quarantined" quarantined_cold quarantined_warm;
  check_states ~msg:"quarantined cached vs cold" cold warm

(* A rolled-back tick commits no delta: the Fail policy restores the state
   and the next successful tick revalidates against the *previous
   committed* summary, never the abandoned attempt's. *)
let rollback_discards_delta () =
  with_injection (fun () ->
      let sim = sentry_sim ~churn:30 ~n:80 Simulation.Indexed in
      Simulation.step sim;
      Alcotest.(check bool) "tick 1 committed a delta" true
        (Simulation.last_delta sim <> None);
      Fault_inject.arm ~point:"post.apply" (Fault_inject.At_count 1);
      (match Simulation.step sim with
      | () -> Alcotest.fail "injected step did not raise"
      | exception Fault.Error _ -> ());
      Alcotest.(check bool) "rollback discarded the pending delta" true
        (Simulation.last_delta sim = None);
      Fault_inject.reset ();
      (* with no delta to revalidate against, the next tick rebuilds cold —
         and must still match a never-faulted twin from here on *)
      Simulation.run sim ~ticks:20;
      let twin = sentry_sim ~churn:30 ~n:80 Simulation.Indexed in
      Simulation.run twin ~ticks:21;
      check_states ~msg:"post-rollback vs never-faulted" (sorted_units twin) (sorted_units sim))

(* ------------------------------------------------------------------ *)
(* Solo-family memoization: a single-domain parallel family has exactly one
   member on one lane, so it is safe to memoize — and with the cache on it
   must reuse structures across ticks like the plain indexed evaluator. *)
let solo_family_memoizes () =
  let baseline =
    let sim = sentry_sim ~churn:5 ~n:120 Simulation.Naive in
    Simulation.run sim ~ticks:30;
    sorted_units sim
  in
  let sim = sentry_sim ~churn:5 ~n:120 (Simulation.Parallel { domains = 1 }) in
  Simulation.run sim ~ticks:30;
  let r = Simulation.report sim in
  Alcotest.(check bool) "solo family reused cached structures" true
    (r.Simulation.index_reuses > 0);
  check_states ~msg:"parallel:1 cached vs naive" baseline (sorted_units sim)

(* ------------------------------------------------------------------ *)
(* Fuzz: randomized churn against the naive evaluator *)

let fuzz_churn =
  QCheck.Test.make ~name:"incremental: cached indexed = naive under random churn" ~count:20
    (QCheck.make
       ~print:(fun (n, churn, thresh, ticks, seed) ->
         Printf.sprintf "n=%d churn=%d thresh=%d ticks=%d seed=%d" n churn thresh ticks seed)
       QCheck.Gen.(
         tup5 (int_range 24 80) (int_range 0 100) (int_range 0 8) (int_range 8 20)
           (int_range 0 1000)))
    (fun (n, churn, thresh, ticks, seed) ->
      let run evaluator =
        let sim = sentry_sim ~churn ~thresh ~seed ~n evaluator in
        Simulation.run sim ~ticks;
        sorted_units sim
      in
      let naive = run Simulation.Naive and cached = run Simulation.Indexed in
      Array.length naive = Array.length cached
      && Array.for_all2 (fun a b -> compare a b = 0) naive cached)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "incremental.differential",
      [
        tc "battle: cache on = cache off = naive, all evaluators" `Slow
          battle_cache_differential;
        tc "sentry: cache on = cache off = naive, all evaluators" `Slow
          sentry_cache_differential;
      ] );
    ( "incremental.delta",
      [
        tc "sentry summary covers ground truth (non-structural)" `Quick sentry_delta_covers;
        tc "battle summary covers ground truth (structural)" `Quick battle_delta_covers;
      ] );
    ( "incremental.faults",
      [
        tc "degrade mid-run with cache on = clean naive" `Slow degrade_with_cache;
        tc "quarantine parity: cache on = cache off" `Quick quarantine_cache_parity;
        tc "rollback discards the pending delta" `Quick rollback_discards_delta;
      ] );
    ( "incremental.memoization",
      [ tc "solo parallel family memoizes and reuses" `Quick solo_family_memoizes ] );
    ("incremental.fuzz", [ QCheck_alcotest.to_alcotest fuzz_churn ]);
  ]
