(* Property tests for the index structures: every index must agree exactly
   with a brute-force scan on random inputs. *)

open Sgl_index

let qtest = QCheck_alcotest.to_alcotest

(* Random geometry generators.  Coordinates are drawn from a small integer
   lattice scaled by 0.5 so duplicates and boundary hits are common — the
   regimes where range trees typically break. *)
let coord_gen = QCheck.Gen.(map (fun i -> float_of_int i *. 0.5) (int_range (-20) 20))

let point2_gen = QCheck.Gen.pair coord_gen coord_gen

let points2_gen = QCheck.Gen.(list_size (int_range 0 120) point2_gen)

let interval_gen =
  QCheck.Gen.(
    map
      (fun (a, b, ls, hs) ->
        let lo = Float.min a b and hi = Float.max a b in
        Interval.make ~lo ~lo_strict:ls ~hi ~hi_strict:hs ())
      (tup4 coord_gen coord_gen bool bool))

let arbitrary_points2 = QCheck.make ~print:(fun l -> QCheck.Print.(list (pair float float)) l) points2_gen

(* ------------------------------------------------------------------ *)
(* Interval *)

let interval_mem_matches_positions =
  QCheck.Test.make ~name:"interval: positions = members of sorted array" ~count:300
    (QCheck.make QCheck.Gen.(pair (list_size (int_range 0 60) coord_gen) interval_gen))
    (fun (l, iv) ->
      let arr = Array.of_list (List.sort compare l) in
      let a, b = Interval.positions iv arr in
      let expected = Array.to_list arr |> List.filter (Interval.mem iv) |> List.length in
      b - a = expected
      && Array.for_all (fun x -> not (Interval.mem iv x))
           (Array.append (Array.sub arr 0 a) (Array.sub arr b (Array.length arr - b))))

let test_interval_inter () =
  let a = Interval.make ~lo:0. ~hi:10. () in
  let b = Interval.make ~lo:5. ~lo_strict:true ~hi:20. () in
  let c = Interval.inter a b in
  Alcotest.(check bool) "left strict" true c.Interval.lo_strict;
  Alcotest.(check (float 0.)) "lo" 5. c.Interval.lo;
  Alcotest.(check (float 0.)) "hi" 10. c.Interval.hi;
  Alcotest.(check bool) "5 excluded" false (Interval.mem c 5.);
  Alcotest.(check bool) "10 included" true (Interval.mem c 10.)

let test_interval_empty () =
  Alcotest.(check bool) "reversed" true (Interval.is_empty (Interval.make ~lo:3. ~hi:1. ()));
  Alcotest.(check bool) "point strict" true
    (Interval.is_empty (Interval.make ~lo:3. ~hi:3. ~hi_strict:true ()));
  Alcotest.(check bool) "point closed" false (Interval.is_empty (Interval.make ~lo:3. ~hi:3. ()))

(* ------------------------------------------------------------------ *)
(* Segment tree *)

let segment_tree_sum_matches_fold =
  QCheck.Test.make ~name:"segment tree: range sum = array fold" ~count:200
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 50) (QCheck.int_range (-100) 100)) QCheck.small_int)
    (fun (l, seed) ->
      let arr = Array.of_list l in
      let n = Array.length arr in
      let t = Segment_tree.build ~neutral:0 ~op:( + ) arr in
      let ok = ref true in
      for i = 0 to 20 do
        let a = (seed + (i * 7)) mod (n + 1) and b = (seed + (i * 13)) mod (n + 1) in
        let lo = min a b and hi = max a b in
        let expected = Array.fold_left ( + ) 0 (Array.sub arr lo (hi - lo)) in
        if Segment_tree.query t ~lo ~hi <> expected then ok := false
      done;
      !ok)

let test_segment_tree_updates () =
  let t = Segment_tree.create ~neutral:max_int ~op:min 10 in
  for i = 0 to 9 do
    Segment_tree.set t i (100 - i)
  done;
  Alcotest.(check int) "min all" 91 (Segment_tree.query_all t);
  Segment_tree.set t 3 (-5);
  Alcotest.(check int) "after update" (-5) (Segment_tree.query t ~lo:0 ~hi:10);
  Alcotest.(check int) "excluding slot" 92 (Segment_tree.query t ~lo:4 ~hi:9);
  Segment_tree.clear t 3;
  Alcotest.(check int) "cleared" 91 (Segment_tree.query_all t)

let test_segment_tree_empty_range () =
  let t = Segment_tree.create ~neutral:0 ~op:( + ) 5 in
  Alcotest.(check int) "empty range" 0 (Segment_tree.query t ~lo:2 ~hi:2);
  Alcotest.check_raises "bad range" (Invalid_argument "Segment_tree.query: bad range")
    (fun () -> ignore (Segment_tree.query t ~lo:3 ~hi:2))

let test_segment_tree_zero_size () =
  let t = Segment_tree.create ~neutral:max_int ~op:min 0 in
  Alcotest.(check int) "neutral" max_int (Segment_tree.query_all t)

let test_segment_tree_single () =
  let t = Segment_tree.build ~neutral:0 ~op:( + ) [| 7 |] in
  Alcotest.(check int) "whole" 7 (Segment_tree.query_all t);
  Alcotest.(check int) "unit range" 7 (Segment_tree.query t ~lo:0 ~hi:1);
  Alcotest.(check int) "empty range" 0 (Segment_tree.query t ~lo:0 ~hi:0)

(* ------------------------------------------------------------------ *)
(* Range tree *)

(* Brute-force statistic sum over a boxed point set. *)
let brute_stats points box stats m =
  let acc = Array.make m 0. in
  Array.iteri
    (fun id coords ->
      if List.for_all2 (fun iv c -> Interval.mem iv c) box coords then begin
        let s = stats id in
        for j = 0 to m - 1 do
          acc.(j) <- acc.(j) +. s.(j)
        done
      end)
    points;
  acc

let float_array_eq a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-6) a b

let range_tree_test ~name ~dims_count =
  QCheck.Test.make ~name ~count:150
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 0 80) (list_repeat dims_count coord_gen))
           (list_repeat dims_count interval_gen)))
    (fun (pts, box) ->
      let points = Array.of_list (List.map (fun c -> c) pts) in
      let n = Array.length points in
      let dims = List.init dims_count (fun d id -> List.nth points.(id) d) in
      (* stats: [1; first coordinate] so both count and sum paths are hit *)
      let stats id = [| 1.; List.nth points.(id) 0 |] in
      let tree = Range_tree.build ~dims ~stats:(Some stats) ~m:2 (Array.init n (fun i -> i)) in
      let got = Range_tree.query_stats tree box in
      let expected =
        brute_stats (Array.map (fun p -> p) points) box stats 2
      in
      let enum = ref [] in
      Range_tree.query_enum tree box (fun id -> enum := id :: !enum);
      let expected_ids =
        List.init n (fun id -> id)
        |> List.filter (fun id ->
               List.for_all2 (fun iv c -> Interval.mem iv c) box points.(id))
      in
      float_array_eq got expected
      && List.sort compare !enum = List.sort compare expected_ids)

let range_tree_1d = range_tree_test ~name:"range tree 1d = brute force" ~dims_count:1
let range_tree_2d = range_tree_test ~name:"range tree 2d = brute force" ~dims_count:2
let range_tree_3d = range_tree_test ~name:"range tree 3d = brute force" ~dims_count:3

let test_range_tree_empty () =
  let tree = Range_tree.build ~dims:[ (fun _ -> 0.); (fun _ -> 0.) ] ~stats:None ~m:0 [||] in
  let box = [ Interval.everything; Interval.everything ] in
  Alcotest.(check int) "no points" 0 (Range_tree.query_count tree box);
  (* An empty tree collapses to its first (empty) level. *)
  Alcotest.(check int) "depth" 1 (Range_tree.depth tree)

let test_range_tree_bad_arity () =
  let tree = Range_tree.build ~dims:[ (fun _ -> 0.) ] ~stats:None ~m:0 [| 0 |] in
  Alcotest.check_raises "arity"
    (Invalid_argument "Range_tree.query_enum: box arity does not match tree depth") (fun () ->
      Range_tree.query_enum tree [ Interval.everything; Interval.everything ] ignore)

(* ------------------------------------------------------------------ *)
(* Cascade tree *)

let cascade_matches_brute =
  QCheck.Test.make ~name:"cascade tree = brute force" ~count:300
    (QCheck.make QCheck.Gen.(pair points2_gen (pair interval_gen interval_gen)))
    (fun (pts, (ivx, ivy)) ->
      let points = Array.of_list pts in
      let n = Array.length points in
      let x id = fst points.(id) and y id = snd points.(id) in
      let stats id = [| 1.; x id; y id; x id *. x id |] in
      let tree = Cascade_tree.build ~x ~y ~stats ~m:4 (Array.init n (fun i -> i)) in
      let got = Cascade_tree.query tree ~x:ivx ~y:ivy in
      let expected = Array.make 4 0. in
      for id = 0 to n - 1 do
        if Interval.mem ivx (x id) && Interval.mem ivy (y id) then begin
          let s = stats id in
          for j = 0 to 3 do
            expected.(j) <- expected.(j) +. s.(j)
          done
        end
      done;
      float_array_eq got expected)

let cascade_matches_range_tree =
  QCheck.Test.make ~name:"cascade tree = layered range tree" ~count:200
    (QCheck.make QCheck.Gen.(pair points2_gen (pair interval_gen interval_gen)))
    (fun (pts, (ivx, ivy)) ->
      let points = Array.of_list pts in
      let n = Array.length points in
      let x id = fst points.(id) and y id = snd points.(id) in
      let stats id = [| 1.; y id |] in
      let ids = Array.init n (fun i -> i) in
      let cascade = Cascade_tree.build ~x ~y ~stats ~m:2 ids in
      let layered = Range_tree.build ~dims:[ x; y ] ~stats:(Some stats) ~m:2 ids in
      float_array_eq (Cascade_tree.query cascade ~x:ivx ~y:ivy)
        (Range_tree.query_stats layered [ ivx; ivy ]))

let test_cascade_empty () =
  let tree = Cascade_tree.build ~x:(fun _ -> 0.) ~y:(fun _ -> 0.) ~stats:(fun _ -> [||]) ~m:3 [||] in
  let got = Cascade_tree.query tree ~x:Interval.everything ~y:Interval.everything in
  Alcotest.(check int) "zero vector" 3 (Array.length got);
  Alcotest.(check bool) "all zero" true (Array.for_all (fun v -> v = 0.) got)

let test_cascade_single () =
  let tree =
    Cascade_tree.build ~x:(fun _ -> 2.) ~y:(fun _ -> 3.) ~stats:(fun _ -> [| 1.; 5. |]) ~m:2 [| 0 |]
  in
  Alcotest.(check int) "size" 1 (Cascade_tree.size tree);
  let inside = Cascade_tree.query tree ~x:(Interval.make ~lo:2. ~hi:2. ()) ~y:Interval.everything in
  Alcotest.(check bool) "point hit" true (inside = [| 1.; 5. |]);
  let outside =
    Cascade_tree.query tree ~x:(Interval.make ~lo:2. ~hi:2. ~hi_strict:true ()) ~y:Interval.everything
  in
  Alcotest.(check bool) "strict bound misses" true (outside = [| 0.; 0. |])

(* Every point at the same coordinates: the degenerate tree the paper's
   hashtable levels otherwise hide.  All-or-nothing per query. *)
let test_cascade_duplicates () =
  let n = 9 in
  let tree =
    Cascade_tree.build ~x:(fun _ -> 1.5) ~y:(fun _ -> -4.)
      ~stats:(fun id -> [| 1.; float_of_int id |])
      ~m:2 (Array.init n (fun i -> i))
  in
  let all = Cascade_tree.query tree ~x:Interval.everything ~y:Interval.everything in
  Alcotest.(check bool) "all duplicates counted" true
    (all = [| float_of_int n; float_of_int (n * (n - 1) / 2) |]);
  let none =
    Cascade_tree.query tree ~x:(Interval.make ~lo:2. ~hi:9. ()) ~y:Interval.everything
  in
  Alcotest.(check bool) "none" true (none = [| 0.; 0. |])

(* ------------------------------------------------------------------ *)
(* kD-tree *)

let kd_nearest_matches_scan =
  QCheck.Test.make ~name:"kd tree nearest = linear scan" ~count:300
    (QCheck.make QCheck.Gen.(pair points2_gen point2_gen))
    (fun (pts, (qx, qy)) ->
      let points = Array.of_list pts in
      let n = Array.length points in
      let x id = fst points.(id) and y id = snd points.(id) in
      let tree = Kd_tree.build ~x ~y (Array.init n (fun i -> i)) in
      let d2 id =
        let dx = x id -. qx and dy = y id -. qy in
        (dx *. dx) +. (dy *. dy)
      in
      let scan filter =
        let best = ref None in
        for id = 0 to n - 1 do
          if filter id then begin
            match !best with
            | Some (bid, bd2) when bd2 < d2 id || (bd2 = d2 id && bid < id) -> ()
            | _ -> best := Some (id, d2 id)
          end
        done;
        !best
      in
      let all _ = true in
      let even id = id mod 2 = 0 in
      Kd_tree.nearest tree ~qx ~qy = scan all
      && Kd_tree.nearest ~filter:even tree ~qx ~qy = scan even)

let kd_box_matches_scan =
  QCheck.Test.make ~name:"kd tree box query = linear scan" ~count:200
    (QCheck.make QCheck.Gen.(pair points2_gen (pair interval_gen interval_gen)))
    (fun (pts, (ivx, ivy)) ->
      let points = Array.of_list pts in
      let n = Array.length points in
      let x id = fst points.(id) and y id = snd points.(id) in
      let tree = Kd_tree.build ~x ~y (Array.init n (fun i -> i)) in
      let got = ref [] in
      Kd_tree.query_box tree ~x:ivx ~y:ivy (fun id -> got := id :: !got);
      let expected =
        List.init n (fun id -> id)
        |> List.filter (fun id -> Interval.mem ivx (x id) && Interval.mem ivy (y id))
      in
      List.sort compare !got = expected)

let test_kd_empty () =
  let tree = Kd_tree.build ~x:(fun _ -> 0.) ~y:(fun _ -> 0.) [||] in
  Alcotest.(check bool) "no nearest" true (Kd_tree.nearest tree ~qx:0. ~qy:0. = None);
  let visited = ref 0 in
  Kd_tree.query_box tree ~x:Interval.everything ~y:Interval.everything (fun _ -> incr visited);
  Alcotest.(check int) "box visits nothing" 0 !visited

let test_kd_single () =
  let tree = Kd_tree.build ~x:(fun _ -> 3.) ~y:(fun _ -> 4.) [| 42 |] in
  Alcotest.(check int) "size" 1 (Kd_tree.size tree);
  (match Kd_tree.nearest tree ~qx:0. ~qy:0. with
  | Some (42, d2) -> Alcotest.(check (float 0.)) "distance" 25. d2
  | other -> Alcotest.failf "expected the single point, got %s"
               (match other with None -> "None" | Some (id, _) -> Printf.sprintf "id %d" id));
  Alcotest.(check bool) "filtered out" true
    (Kd_tree.nearest ~filter:(fun _ -> false) tree ~qx:0. ~qy:0. = None)

(* Co-located points: ties must break toward the smaller id and box queries
   must visit every duplicate exactly once. *)
let test_kd_duplicates () =
  let tree = Kd_tree.build ~x:(fun _ -> 1.) ~y:(fun _ -> 1.) [| 5; 3; 9; 3 |] in
  (match Kd_tree.nearest tree ~qx:1. ~qy:1. with
  | Some (3, 0.) -> ()
  | _ -> Alcotest.fail "tie must break toward the smaller id");
  let visited = ref [] in
  Kd_tree.query_box tree ~x:(Interval.make ~lo:1. ~hi:1. ()) ~y:Interval.everything (fun id ->
      visited := id :: !visited);
  Alcotest.(check (list int)) "all duplicates visited" [ 3; 3; 5; 9 ]
    (List.sort compare !visited)

(* ------------------------------------------------------------------ *)
(* Sweepline *)

let sweep_case kind =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "sweepline %s = brute force"
         (match kind with Sweepline.Min -> "min" | Sweepline.Max -> "max"))
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         tup4
           (list_size (int_range 0 60) (tup3 coord_gen coord_gen coord_gen))
           (list_size (int_range 0 40) point2_gen)
           (map Float.abs coord_gen)
           (map Float.abs coord_gen)))
    (fun (data_l, query_l, rx, ry) ->
      let data =
        Array.of_list
          (List.mapi (fun id (x, y, v) -> { Sweepline.x; y; value = v; id }) data_l)
      in
      let queries =
        Array.of_list (List.mapi (fun qid (qx, qy) -> { Sweepline.qx; qy; qid }) query_l)
      in
      let got = Sweepline.run kind ~data ~queries ~rx ~ry ~n_queries:(Array.length queries) in
      let ok = ref true in
      Array.iter
        (fun q ->
          let candidates =
            Array.to_list data
            |> List.filter (fun d ->
                   Float.abs (d.Sweepline.x -. q.Sweepline.qx) <= rx
                   && Float.abs (d.Sweepline.y -. q.Sweepline.qy) <= ry)
          in
          let expected =
            List.fold_left
              (fun best d ->
                let v = d.Sweepline.value and id = d.Sweepline.id in
                match best with
                | None -> Some (id, v)
                | Some (bid, bv) ->
                  let cmp = compare v bv in
                  let beats =
                    match kind with
                    | Sweepline.Min -> cmp < 0 || (cmp = 0 && id < bid)
                    | Sweepline.Max -> cmp > 0 || (cmp = 0 && id < bid)
                  in
                  if beats then Some (id, v) else best)
              None candidates
          in
          if got.(q.Sweepline.qid) <> expected then ok := false)
        queries;
      !ok)

let sweep_min = sweep_case Sweepline.Min
let sweep_max = sweep_case Sweepline.Max

(* ------------------------------------------------------------------ *)
(* Cat index *)

let test_cat_index_partitions () =
  let ids = Array.init 20 (fun i -> i) in
  let keys id = [ id mod 2; id mod 3 ] in
  let built = ref 0 in
  let t =
    Cat_index.create ~keys ~ids ~builder:(fun members ->
        incr built;
        Array.length members)
  in
  Alcotest.(check int) "6 partitions" 6 (Cat_index.partition_count t);
  Alcotest.(check int) "lazy" 0 !built;
  (match Cat_index.find t [ 0; 0 ] with
  | Some n -> Alcotest.(check int) "partition size" 4 n (* ids 0,6,12,18 *)
  | None -> Alcotest.fail "partition missing");
  ignore (Cat_index.find t [ 0; 0 ]);
  Alcotest.(check int) "cached" 1 !built;
  let others = Cat_index.find_matching t ~accept:(fun k -> List.hd k <> 0) in
  Alcotest.(check int) "odd partitions" 3 (List.length others);
  Alcotest.(check int) "missing partition" 0 (Array.length (Cat_index.members t [ 9; 9 ]));
  Alcotest.(check bool) "missing find" true (Cat_index.find t [ 9; 9 ] = None)

(* No ids at all: every partition is absent (never empty-but-present), so
   probes see [None]/[[||]] and the builder is never invoked. *)
let test_cat_index_empty () =
  let built = ref 0 in
  let t =
    Cat_index.create ~keys:(fun id -> [ id ]) ~ids:[||] ~builder:(fun members ->
        incr built;
        Array.length members)
  in
  Alcotest.(check int) "no partitions" 0 (Cat_index.partition_count t);
  Alcotest.(check bool) "find misses" true (Cat_index.find t [ 0 ] = None);
  Alcotest.(check int) "members empty" 0 (Array.length (Cat_index.members t [ 0 ]));
  Alcotest.(check int) "nothing matches" 0
    (List.length (Cat_index.find_matching t ~accept:(fun _ -> true)));
  Cat_index.iter_built (fun _ _ -> Alcotest.fail "nothing was built") t;
  Alcotest.(check int) "builder never ran" 0 !built

let test_cat_index_single () =
  let t = Cat_index.create ~keys:(fun _ -> [ 7 ]) ~ids:[| 0 |] ~builder:Array.length in
  Alcotest.(check int) "one partition" 1 (Cat_index.partition_count t);
  Alcotest.(check bool) "found" true (Cat_index.find t [ 7 ] = Some 1)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "index.interval",
      [
        qtest interval_mem_matches_positions;
        tc "intersection" `Quick test_interval_inter;
        tc "emptiness" `Quick test_interval_empty;
      ] );
    ( "index.segment_tree",
      [
        qtest segment_tree_sum_matches_fold;
        tc "point updates with min" `Quick test_segment_tree_updates;
        tc "empty range" `Quick test_segment_tree_empty_range;
        tc "zero size" `Quick test_segment_tree_zero_size;
        tc "single element" `Quick test_segment_tree_single;
      ] );
    ( "index.range_tree",
      [
        qtest range_tree_1d;
        qtest range_tree_2d;
        qtest range_tree_3d;
        tc "empty tree" `Quick test_range_tree_empty;
        tc "arity mismatch" `Quick test_range_tree_bad_arity;
      ] );
    ( "index.cascade_tree",
      [
        qtest cascade_matches_brute;
        qtest cascade_matches_range_tree;
        tc "empty tree" `Quick test_cascade_empty;
        tc "single element" `Quick test_cascade_single;
        tc "duplicate coordinates" `Quick test_cascade_duplicates;
      ] );
    ( "index.kd_tree",
      [
        qtest kd_nearest_matches_scan;
        qtest kd_box_matches_scan;
        tc "empty" `Quick test_kd_empty;
        tc "single element" `Quick test_kd_single;
        tc "duplicate coordinates" `Quick test_kd_duplicates;
      ] );
    ("index.sweepline", [ qtest sweep_min; qtest sweep_max ]);
    ( "index.cat_index",
      [
        tc "partitions, laziness, caching" `Quick test_cat_index_partitions;
        tc "empty input" `Quick test_cat_index_empty;
        tc "single element" `Quick test_cat_index_single;
      ] );
  ]

let _ = arbitrary_points2
