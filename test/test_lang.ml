(* Tests for the SGL language pipeline: lexer, parser, pretty round-trip,
   typechecker rejections, normalization, resolution and the reference
   interpreter — including the paper's Figure 3 script. *)

open Sgl_relalg
open Sgl_lang

let schema () =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "player" Value.TInt;
      Schema.attr "posx" Value.TFloat;
      Schema.attr "posy" Value.TFloat;
      Schema.attr "health" Value.TInt;
      Schema.attr "range" Value.TFloat;
      Schema.attr "morale" Value.TInt;
      Schema.attr "cooldown" Value.TInt;
      Schema.attr ~tag:Schema.Max "weaponused" Value.TInt;
      Schema.attr ~tag:Schema.Sum "movevect_x" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_y" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "damage" Value.TFloat;
      Schema.attr ~tag:Schema.Max "inaura" Value.TFloat;
    ]

let mk_unit s ~key ~player ~x ~y ~health ~range ~morale ~cooldown =
  Tuple.of_list s
    [
      Value.Int key; Value.Int player; Value.Float x; Value.Float y; Value.Int health;
      Value.Float range; Value.Int morale; Value.Int cooldown; Value.Int 0; Value.Float 0.;
      Value.Float 0.; Value.Float 0.; Value.Float 0.;
    ]

(* The paper's Figure 3 script, in our concrete syntax, with the aggregates
   of Figure 4 and actions in the spirit of Figure 5. *)
let figure3_source =
  {|
const ARROW_HIT_DAMAGE = 10;
const ARMOR = 2;

aggregate CountEnemiesInRange(u, range) {
  count(*)
  where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player
}

aggregate CentroidOfEnemyUnits(u, range) {
  (avg(e.posx), avg(e.posy))
  where e.posx >= u.posx - range and e.posx <= u.posx + range
    and e.posy >= u.posy - range and e.posy <= u.posy + range
    and e.player <> u.player
  default (u.posx, u.posy)
}

aggregate NearestEnemy(u) {
  nearest(e.posx, e.posy, u.posx, u.posy; e.key)
  where e.player <> u.player
  default -1
}

action FireAt(u, target_key) {
  on key(target_key) {
    damage <- (ARROW_HIT_DAMAGE - ARMOR) * (random(1) mod 2);
  }
  on self {
    weaponused <- 1;
  }
}

action MoveInDirection(u, v) {
  on self {
    movevect_x <- v.x;
    movevect_y <- v.y;
  }
}

script main(u) {
  let c = CountEnemiesInRange(u, u.range);
  let away_vector = (u.posx, u.posy) - CentroidOfEnemyUnits(u, u.range);
  if c > u.morale then {
    perform MoveInDirection(u, away_vector);
  } else {
    if c > 0 and u.cooldown = 0 then {
      let target_key = NearestEnemy(u);
      perform FireAt(u, target_key);
    }
  }
}
|}

let compile_figure3 () =
  Compile.compile ~schema:(schema ()) figure3_source

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_tokens () =
  let toks = Lexer.tokenize "let x = 3.5 + y_2; # comment\nif <> <= <- //c\nkey" in
  let kinds = List.map (fun l -> l.Lexer.token) toks in
  Alcotest.(check bool) "shape" true
    (kinds
    = [
        Lexer.KW_let; Lexer.IDENT "x"; Lexer.EQ; Lexer.FLOAT 3.5; Lexer.PLUS; Lexer.IDENT "y_2";
        Lexer.SEMI; Lexer.KW_if; Lexer.NE; Lexer.LE; Lexer.ARROW; Lexer.KW_key; Lexer.EOF;
      ])

let test_lexer_positions () =
  let toks = Lexer.tokenize "a\n  b" in
  match toks with
  | [ a; b; _eof ] ->
    Alcotest.(check (pair int int)) "a" (1, 1) (a.Lexer.line, a.Lexer.col);
    Alcotest.(check (pair int int)) "b" (2, 3) (b.Lexer.line, b.Lexer.col)
  | _ -> Alcotest.fail "expected three tokens"

let test_lexer_int_dot () =
  (* "3.x" must lex as INT DOT IDENT, not a float *)
  let toks = List.map (fun l -> l.Lexer.token) (Lexer.tokenize "3.x") in
  Alcotest.(check bool) "int dot ident" true
    (toks = [ Lexer.INT 3; Lexer.DOT; Lexer.IDENT "x"; Lexer.EOF ])

let test_lexer_error () =
  Alcotest.(check bool) "bad char" true
    (try ignore (Lexer.tokenize "a $ b"); false with Lexer.Lex_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Parser *)

let test_parse_figure3 () =
  let ast = Parser.parse_string figure3_source in
  Alcotest.(check int) "decl count" 8 (List.length ast);
  Alcotest.(check (list string)) "scripts" [ "main" ] (Ast.scripts ast)

let test_parse_precedence () =
  let t = Parser.parse_term_string "1 + 2 * 3 < 4 and not 5 > 6" in
  (match t with
  | Ast.T_and (Ast.T_cmp (Expr.Lt, Ast.T_binop (Expr.Add, _, Ast.T_binop (Expr.Mul, _, _)), _), Ast.T_not _)
    -> ()
  | _ -> Alcotest.fail "precedence mis-parse");
  let v = Parser.parse_term_string "(a, b)" in
  match v with
  | Ast.T_vec (Ast.T_var ("a", _), Ast.T_var ("b", _)) -> ()
  | _ -> Alcotest.fail "vector literal mis-parse"

let test_parse_errors () =
  let fails src = try ignore (Parser.parse_string src); false with Parser.Parse_error _ -> true in
  Alcotest.(check bool) "missing semi" true (fails "script m(u) { let x = 1 }");
  Alcotest.(check bool) "bad decl" true (fails "frobnicate m(u) {}");
  Alcotest.(check bool) "unclosed" true (fails "script m(u) {");
  Alcotest.(check bool) "lone let in if" true
    (fails "script m(u) { if true then let x = 1; }")

let test_parse_roundtrip () =
  let ast = Parser.parse_string figure3_source in
  let printed = Pretty.program_to_string ast in
  let ast2 = Parser.parse_string printed in
  Alcotest.(check bool) "round trip" true
    (Pretty.strip_program ast = Pretty.strip_program ast2)

(* ------------------------------------------------------------------ *)
(* Typechecker *)

let expect_type_error src =
  let s = schema () in
  match Compile.compile ~schema:s src with
  | exception Compile.Compile_error (Compile.Type _) -> ()
  | exception e -> Alcotest.failf "expected a type error, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "expected a type error"

let test_type_unknown_attr () =
  expect_type_error "script m(u) { if u.mana > 0 then { skip; } }"

let test_type_bool_condition () = expect_type_error "script m(u) { if u.posx then { skip; } }"

let test_type_unknown_var () = expect_type_error "script m(u) { let a = b + 1; skip; }"

let test_type_const_effect () =
  expect_type_error "action A(u) { on self { posx <- 1; } } script m(u) { perform A(u); }"

let test_type_arity () =
  expect_type_error
    "aggregate C(u) { count(*) } script m(u) { let a = C(u, 3); skip; }"

let test_type_first_arg_unit () =
  expect_type_error "aggregate C(u) { count(*) } script m(u) { let a = C(3); skip; }"

let test_type_recursion () =
  expect_type_error "script a(u) { perform b(u); } script b(u) { perform a(u); }"

let test_type_reserved_names () =
  expect_type_error "script m(u) { let e = 1; skip; }";
  expect_type_error "script m(u) { let __x = 1; skip; }"

let test_type_duplicate_decl () =
  expect_type_error "script m(u) { skip; } script m(u) { skip; }"

let test_type_rebind () = expect_type_error "script m(u) { let a = 1; let a = 2; skip; }"

let test_type_vec_misuse () =
  expect_type_error "script m(u) { let a = (u.posx, u.posy) + 1; skip; }";
  expect_type_error "script m(u) { let a = u.posx.x; skip; }"

let test_type_e_outside () = expect_type_error "script m(u) { let a = e.posx; skip; }"

(* ------------------------------------------------------------------ *)
(* Normalization *)

let test_normalize_hoists () =
  let src =
    "aggregate C(u) { count(*) } script m(u) { if C(u) + C(u) > 2 then { skip; } }"
  in
  let ast = Parser.parse_string src in
  Alcotest.(check bool) "not normal" false (Normalize.is_normal ast);
  let norm = Normalize.normalize ast in
  Alcotest.(check bool) "normal" true (Normalize.is_normal norm);
  (* Two hoisted lets expected in the script body. *)
  match Ast.find_decl norm "m" with
  | Some (Ast.D_script { body = Ast.A_let (v1, _, Ast.A_let (v2, _, Ast.A_if _)); _ }) ->
    Alcotest.(check bool) "fresh names" true (v1 <> v2 && String.length v1 > 2)
  | _ -> Alcotest.fail "unexpected normal form shape"

let test_normalize_nested_agg_args () =
  let src =
    "aggregate C(u, r) { count(*) where e.posx < r } script m(u) { let a = C(u, C(u, 1) + 1); \
     skip; }"
  in
  let norm = Normalize.normalize (Parser.parse_string src) in
  Alcotest.(check bool) "normal" true (Normalize.is_normal norm)

let test_normalize_idempotent () =
  (* Figure 3 is not in normal form: the centroid call is nested inside a
     vector subtraction. *)
  let ast = Parser.parse_string figure3_source in
  Alcotest.(check bool) "figure3 not yet normal" false (Normalize.is_normal ast);
  let n1 = Normalize.normalize ast in
  Alcotest.(check bool) "normalized" true (Normalize.is_normal n1);
  Alcotest.(check bool) "stable" true (Normalize.is_normal (Normalize.normalize n1))

(* ------------------------------------------------------------------ *)
(* Resolution *)

let test_resolve_figure3 () =
  let prog = compile_figure3 () in
  Alcotest.(check int) "three aggregate instances" 3 (Array.length prog.Core_ir.aggregates);
  Alcotest.(check int) "one entry script" 1 (List.length prog.Core_ir.scripts);
  let main = Option.get (Core_ir.find_script prog "main") in
  Alcotest.(check (list int)) "aggregates used in order" [ 0; 1; 2 ]
    (Core_ir.aggregates_used main.Core_ir.body)

let test_resolve_dedups_instances () =
  let src =
    {|
aggregate C(u, r) {
  count(*) where e.posx >= u.posx - r and e.posx <= u.posx + r
}
script a(u) { let x = C(u, 5.0); skip; }
script b(u) { let x = C(u, 5.0); let y = C(u, 7.0); skip; }
|}
  in
  let prog = Compile.compile ~schema:(schema ()) src in
  (* C(u,5) shared between scripts; C(u,7) distinct. *)
  Alcotest.(check int) "two instances" 2 (Array.length prog.Core_ir.aggregates)

let test_resolve_inlines_helper_scripts () =
  let src =
    {|
action A(u) { on self { damage <- 1; } }
script helper(u, n) { if n > 0 then { perform A(u); } }
script main(u) { perform helper(u, u.health); }
|}
  in
  let prog = Compile.compile ~schema:(schema ()) src in
  (* helper takes parameters, so only main is an entry point. *)
  Alcotest.(check int) "entry scripts" 1 (List.length prog.Core_ir.scripts);
  (* The helper's parameter is inlined, so main's body is the helper's
     conditional directly. *)
  match (List.hd prog.Core_ir.scripts).Core_ir.body with
  | Core_ir.If (_, Core_ir.Effects _, Core_ir.Skip) -> ()
  | other -> Alcotest.failf "unexpected inline shape: %a" Core_ir.pp other

let test_resolve_const_fold () =
  let src = "const K = 4; script main(u) { let a = K; if a > 3 then { skip; } }" in
  let prog = Compile.compile ~schema:(schema ()) src in
  match (List.hd prog.Core_ir.scripts).Core_ir.body with
  | Core_ir.Let (Expr.Const (Value.Int 4), _) -> ()
  | other -> Alcotest.failf "constant not resolved: %a" Core_ir.pp other

(* ------------------------------------------------------------------ *)
(* Interpreter: Figure 3 end-to-end *)

let figure3_units s =
  [|
    (* unit 0: player 0, two enemies in range, cooldown ready, high morale *)
    mk_unit s ~key:0 ~player:0 ~x:0. ~y:0. ~health:100 ~range:5. ~morale:10 ~cooldown:0;
    (* unit 1: player 0, far corner *)
    mk_unit s ~key:1 ~player:0 ~x:50. ~y:50. ~health:100 ~range:5. ~morale:10 ~cooldown:0;
    (* enemies: player 1 *)
    mk_unit s ~key:2 ~player:1 ~x:1. ~y:1. ~health:100 ~range:5. ~morale:0 ~cooldown:3;
    mk_unit s ~key:3 ~player:1 ~x:2. ~y:0. ~health:100 ~range:5. ~morale:0 ~cooldown:3;
  |]

let test_interp_figure3_fires () =
  let s = schema () in
  let prog = compile_figure3 () in
  let script = Option.get (Core_ir.find_script prog "main") in
  let units = figure3_units s in
  (* rand = 1 so (random(1) mod 2) = 1 and arrows hit *)
  let effects = Interp.run_script ~prog ~script ~units ~rand_for:(fun _ _ -> 1) in
  let combined = Combine.combine effects in
  (* Unit 0 fires at its nearest enemy (key 2): 8 damage there. *)
  let find k = List.find (fun t -> Tuple.key s t = k) (Relation.to_list combined) in
  let damage_ix = Schema.find s "damage" and weapon_ix = Schema.find s "weaponused" in
  Alcotest.(check (float 1e-9)) "unit 2 damaged" 8. (Value.to_float (Tuple.get (find 2) damage_ix));
  Alcotest.(check int) "unit 0 fired" 1 (Value.to_int (Tuple.get (find 0) weapon_ix));
  (* Enemies with morale 0 and two player-0... unit 2 sees 2 enemies (0 in range? unit 0 and 1...) *)
  (* Unit 1 is isolated: no enemies within 5, so it contributes nothing. *)
  Alcotest.(check bool) "unit 1 idle" true
    (not (List.exists (fun t -> Tuple.key s t = 1) (Relation.to_list combined)))

let test_interp_flees_when_outnumbered () =
  let s = schema () in
  let prog = compile_figure3 () in
  let script = Option.get (Core_ir.find_script prog "main") in
  (* Unit 0 has morale 1 and faces two enemies: it must flee. *)
  let units = figure3_units s in
  Tuple.set units.(0) (Schema.find s "morale") (Value.Int 1);
  let effects = Interp.run_script ~prog ~script ~units ~rand_for:(fun _ _ -> 0) in
  let combined = Combine.combine effects in
  let row0 = List.find (fun t -> Tuple.key s t = 0) (Relation.to_list combined) in
  let mvx = Value.to_float (Tuple.get row0 (Schema.find s "movevect_x")) in
  let mvy = Value.to_float (Tuple.get row0 (Schema.find s "movevect_y")) in
  (* enemies centroid is at (1.5, 0.5); away vector points negative. *)
  Alcotest.(check bool) "flees away" true (mvx < 0. && mvy < 0.);
  Alcotest.(check int) "did not fire" 0
    (Value.to_int (Tuple.get row0 (Schema.find s "weaponused")))

let test_interp_aoe_heal () =
  let s = schema () in
  let src =
    {|
const HEAL_AURA = 5;
const HEALER_RANGE = 3.0;
action Heal(u) {
  on all(u.player = e.player
         and e.posx >= u.posx - HEALER_RANGE and e.posx <= u.posx + HEALER_RANGE
         and e.posy >= u.posy - HEALER_RANGE and e.posy <= u.posy + HEALER_RANGE) {
    inaura <- HEAL_AURA;
  }
}
script main(u) { perform Heal(u); }
|}
  in
  let prog = Compile.compile ~schema:s src in
  let script = Option.get (Core_ir.find_script prog "main") in
  let units = figure3_units s in
  let effects = Interp.run_script ~prog ~script ~units ~rand_for:(fun _ _ -> 0) in
  let combined = Combine.combine effects in
  let aura_ix = Schema.find s "inaura" in
  let row0 = List.find (fun t -> Tuple.key s t = 0) (Relation.to_list combined) in
  (* Unit 0 is healed by itself only (unit 1 is out of range): aura max = 5,
     and crucially not 10 — healing auras do not stack. *)
  Alcotest.(check (float 1e-9)) "nonstackable" 5. (Value.to_float (Tuple.get row0 aura_ix));
  let row2 = List.find (fun t -> Tuple.key s t = 2) (Relation.to_list combined) in
  (* Units 2 and 3 heal each other and themselves: still max 5. *)
  Alcotest.(check (float 1e-9)) "nonstackable 2" 5. (Value.to_float (Tuple.get row2 aura_ix))

let test_interp_key_miss_fizzles () =
  let s = schema () in
  let src =
    {|
action Hit(u, k) { on key(k) { damage <- 1; } }
script main(u) { perform Hit(u, 999); }
|}
  in
  let prog = Compile.compile ~schema:s src in
  let script = Option.get (Core_ir.find_script prog "main") in
  let units = figure3_units s in
  let effects = Interp.run_script ~prog ~script ~units ~rand_for:(fun _ _ -> 0) in
  Alcotest.(check int) "no effects" 0 (Relation.cardinality effects)

let test_interp_random_stability () =
  let s = schema () in
  let src = "script main(u) { let a = random(7); if a >= 0 then { skip; } }" in
  let prog = Compile.compile ~schema:s src in
  ignore prog;
  (* Random is threaded through Expr.eval; stability within a tick is the
     Prng module's contract, tested in test_util. *)
  ()

let suite =
  let tc = Alcotest.test_case in
  [
    ( "lang.lexer",
      [
        tc "token stream" `Quick test_lexer_tokens;
        tc "positions" `Quick test_lexer_positions;
        tc "int-dot-ident" `Quick test_lexer_int_dot;
        tc "bad character" `Quick test_lexer_error;
      ] );
    ( "lang.parser",
      [
        tc "figure 3 parses" `Quick test_parse_figure3;
        tc "precedence" `Quick test_parse_precedence;
        tc "errors" `Quick test_parse_errors;
        tc "pretty round-trip" `Quick test_parse_roundtrip;
      ] );
    ( "lang.typecheck",
      [
        tc "unknown attribute" `Quick test_type_unknown_attr;
        tc "non-bool condition" `Quick test_type_bool_condition;
        tc "unknown variable" `Quick test_type_unknown_var;
        tc "const attr effect" `Quick test_type_const_effect;
        tc "call arity" `Quick test_type_arity;
        tc "first arg must be unit" `Quick test_type_first_arg_unit;
        tc "recursion rejected" `Quick test_type_recursion;
        tc "reserved names" `Quick test_type_reserved_names;
        tc "duplicate declarations" `Quick test_type_duplicate_decl;
        tc "rebinding rejected" `Quick test_type_rebind;
        tc "vector misuse" `Quick test_type_vec_misuse;
        tc "e outside aggregate" `Quick test_type_e_outside;
      ] );
    ( "lang.normalize",
      [
        tc "hoists aggregate calls" `Quick test_normalize_hoists;
        tc "nested aggregate arguments" `Quick test_normalize_nested_agg_args;
        tc "idempotent" `Quick test_normalize_idempotent;
      ] );
    ( "lang.resolve",
      [
        tc "figure 3 instances" `Quick test_resolve_figure3;
        tc "instance dedup" `Quick test_resolve_dedups_instances;
        tc "helper inlining" `Quick test_resolve_inlines_helper_scripts;
        tc "constant folding" `Quick test_resolve_const_fold;
      ] );
    ( "lang.interp",
      [
        tc "figure 3 fires at nearest" `Quick test_interp_figure3_fires;
        tc "figure 3 flees when outnumbered" `Quick test_interp_flees_when_outnumbered;
        tc "healing aura is nonstackable" `Quick test_interp_aoe_heal;
        tc "missing key fizzles" `Quick test_interp_key_miss_fizzles;
        tc "random stability" `Quick test_interp_random_stability;
      ] );
  ]
