(* Property tests for the algebraic laws the optimizer relies on
   (Section 5.2: "the algebraic laws that hold in our algebra"). *)

open Sgl_relalg

let qtest = QCheck_alcotest.to_alcotest
let no_rand _ = 0

let schema () =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "a" Value.TInt;
      Schema.attr "b" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "c" Value.TFloat;
    ]

(* Random relations over the small schema; keys may repeat (multisets). *)
let relation_gen s =
  QCheck.Gen.(
    map
      (fun rows ->
        Relation.of_tuples s
          (List.map
             (fun (k, a, b, c) ->
               Tuple.of_list s
                 [
                   Value.Int (abs k mod 6); Value.Int (a mod 5);
                   Value.Float (float_of_int (b mod 7)); Value.Float (float_of_int (c mod 9));
                 ])
             rows))
      (list_size (int_range 0 20) (tup4 small_int small_int small_int small_int)))

(* Random boolean conditions over the row (bound as u). *)
let cond_gen =
  QCheck.Gen.(
    let atom =
      let* attr = int_range 0 3 in
      let* op = oneofl [ Expr.Lt; Expr.Le; Expr.Eq; Expr.Ne; Expr.Gt; Expr.Ge ] in
      let* k = int_range 0 6 in
      return (Expr.Cmp (op, Expr.UAttr attr, Expr.Const (Value.Int k)))
    in
    oneof
      [
        atom;
        (let* a = atom in
         let* b = atom in
         return (Expr.And (a, b)));
        (let* a = atom in
         let* b = atom in
         return (Expr.Or (a, b)));
        map (fun a -> Expr.Not a) atom;
      ])

let arb s = QCheck.make (relation_gen s)
let arb_with_cond s = QCheck.make QCheck.Gen.(pair (relation_gen s) cond_gen)
let arb_with_conds s = QCheck.make QCheck.Gen.(triple (relation_gen s) cond_gen cond_gen)

let eq = Relation.equal_as_multiset

let select_fusion =
  let s = schema () in
  QCheck.Test.make ~name:"sigma_p(sigma_q(R)) = sigma_(p and q)(R)" ~count:300
    (arb_with_conds s)
    (fun (r, p, q) ->
      eq
        (Algebra.select ~rand:no_rand p (Algebra.select ~rand:no_rand q r))
        (Algebra.select ~rand:no_rand (Expr.And (p, q)) r))

let select_commutes =
  let s = schema () in
  QCheck.Test.make ~name:"sigma_p(sigma_q(R)) = sigma_q(sigma_p(R))" ~count:300
    (arb_with_conds s)
    (fun (r, p, q) ->
      eq
        (Algebra.select ~rand:no_rand p (Algebra.select ~rand:no_rand q r))
        (Algebra.select ~rand:no_rand q (Algebra.select ~rand:no_rand p r)))

let select_distributes_union =
  let s = schema () in
  QCheck.Test.make ~name:"sigma distributes over multiset union" ~count:300
    (QCheck.make QCheck.Gen.(triple (relation_gen s) (relation_gen s) cond_gen))
    (fun (r1, r2, p) ->
      eq
        (Algebra.select ~rand:no_rand p (Algebra.union r1 r2))
        (Algebra.union (Algebra.select ~rand:no_rand p r1) (Algebra.select ~rand:no_rand p r2)))

let select_partition =
  let s = schema () in
  QCheck.Test.make ~name:"sigma_p(R) |+| sigma_(not p)(R) = R (rule 9 premise)" ~count:300
    (arb_with_cond s)
    (fun (r, p) ->
      eq
        (Algebra.union (Algebra.select ~rand:no_rand p r)
           (Algebra.select ~rand:no_rand (Expr.Not p) r))
        r)

let extend_then_select =
  (* extension with a fresh column commutes with selection on old columns *)
  let s = schema () in
  QCheck.Test.make ~name:"extend commutes with selection on old columns" ~count:300
    (arb_with_cond s)
    (fun (r, p) ->
      let f = Expr.Binop (Expr.Add, Expr.UAttr 1, Expr.Const (Value.Int 1)) in
      eq
        (Algebra.select ~rand:no_rand p (Algebra.extend ~rand:no_rand [ f ] r))
        (Algebra.extend ~rand:no_rand [ f ] (Algebra.select ~rand:no_rand p r)))

let product_cardinality =
  let s = schema () in
  QCheck.Test.make ~name:"|R x S| = |R| * |S|" ~count:100
    (QCheck.pair (arb s) (arb s))
    (fun (r1, r2) ->
      Relation.cardinality (Algebra.product r1 r2)
      = Relation.cardinality r1 * Relation.cardinality r2)

let union_commutative_associative =
  let s = schema () in
  QCheck.Test.make ~name:"multiset union is commutative and associative" ~count:200
    (QCheck.triple (arb s) (arb s) (arb s))
    (fun (a, b, c) ->
      eq (Algebra.union a b) (Algebra.union b a)
      && eq (Algebra.union (Algebra.union a b) c) (Algebra.union a (Algebra.union b c)))

let group_count_totals =
  let s = schema () in
  QCheck.Test.make ~name:"group counts sum to the cardinality" ~count:200 (arb s) (fun r ->
      let groups = Algebra.group_agg ~group:[ 1 ] ~aggs:[ Algebra.Sql_count ] r in
      let total =
        List.fold_left
          (fun acc (_, counts) ->
            match counts with
            | [ Value.Int c ] -> acc + c
            | _ -> acc)
          0 groups
      in
      total = Relation.cardinality r)

let combine_group_by_key =
  (* (+) produces one row per (key, const attrs) group *)
  let s = schema () in
  QCheck.Test.make ~name:"(+) yields one row per const-group" ~count:200 (arb s) (fun r ->
      let combined = Combine.combine r in
      let groups = Hashtbl.create 16 in
      Relation.iter (fun row -> Hashtbl.replace groups (Combine.group_key s row) ()) r;
      Relation.cardinality combined = Hashtbl.length groups)

(* Chunk-merge invariance (the parallel decision phase's contract): split
   a relation's rows into accumulators any way at all, fold the per-chunk
   accumulators with [Acc.merge_into] in any order, and the result equals
   one-pass combination of the whole relation.  The accumulator groups by
   key alone, so the generator keeps const attributes functionally
   determined by the key (as the engine does). *)
let chunk_merge_invariance =
  let s = schema () in
  let keyed_relation_gen =
    QCheck.Gen.(
      map
        (fun rows ->
          Relation.of_tuples s
            (List.map
               (fun (k, c) ->
                 let k = abs k mod 6 in
                 Tuple.of_list s
                   [
                     Value.Int k; Value.Int (k mod 5);
                     Value.Float (float_of_int (k mod 7)); Value.Float (float_of_int (c mod 9));
                   ])
               rows))
        (list_size (int_range 0 30) (pair small_int small_int)))
  in
  (* each row's chunk, a chunk count, and whether to merge in reverse *)
  let gen =
    QCheck.Gen.(
      let* r = keyed_relation_gen in
      let* chunks = int_range 1 7 in
      let* assignment = list_size (return (Relation.cardinality r)) (int_range 0 (chunks - 1)) in
      let* reverse = bool in
      return (r, chunks, assignment, reverse))
  in
  QCheck.Test.make ~name:"(+) is invariant under chunked accumulation" ~count:200
    (QCheck.make gen)
    (fun (r, chunks, assignment, reverse) ->
      let accs = Array.init chunks (fun _ -> Combine.Acc.create s) in
      let assignment = Array.of_list assignment in
      let i = ref 0 in
      Relation.iter
        (fun row ->
          Combine.Acc.add accs.(assignment.(!i)) row;
          incr i)
        r;
      let merged = Combine.Acc.create s in
      let order = Array.init chunks (fun c -> if reverse then chunks - 1 - c else c) in
      Array.iter (fun c -> Combine.Acc.merge_into ~dst:merged accs.(c)) order;
      eq (Combine.Acc.to_relation merged) (Combine.combine r))

let combine_preserves_sums =
  (* total of a sum-tagged column is invariant under (+) *)
  let s = schema () in
  QCheck.Test.make ~name:"(+) preserves the total of sum columns" ~count:200 (arb s) (fun r ->
      let total rel =
        Relation.fold (fun acc row -> acc +. Value.to_float (Tuple.get row 3)) 0. rel
      in
      Float.abs (total r -. total (Combine.combine r)) < 1e-9)

let suite =
  [
    ( "laws.algebra",
      [
        qtest select_fusion;
        qtest select_commutes;
        qtest select_distributes_union;
        qtest select_partition;
        qtest extend_then_select;
        qtest product_cardinality;
        qtest union_commutative_associative;
        qtest group_count_totals;
        qtest combine_group_by_key;
        qtest combine_preserves_sums;
        qtest chunk_merge_invariance;
      ] );
  ]
