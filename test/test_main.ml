(* Test entry point: every module's suite is registered here. *)

let () =
  Alcotest.run "sgl"
    (List.concat [ Test_util.suite; Test_relalg.suite; Test_index.suite; Test_lang.suite; Test_qopt.suite; Test_engine.suite; Test_battle.suite; Test_effects.suite; Test_fuzz.suite; Test_cli.suite; Test_laws.suite; Test_edge.suite; Test_mods.suite; Test_parallel.suite; Test_fault.suite; Test_fused.suite; Test_incremental.suite; Test_telemetry.suite; Test_analysis.suite; Test_absint.suite; Test_persist.suite; Test_colstore.suite; Test_obs.suite ])
