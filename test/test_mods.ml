(* The shipped mod scripts (examples/scripts/*.sgl) must compile against
   the battle schema and behave identically under both engines — they are
   the "player-created content" the paper's modding story depends on. *)

open Sgl_relalg
open Sgl_lang
open Sgl_qopt
open Sgl_util

let scripts_dir () =
  (* tests run in _build/default/test; sources are two levels up *)
  List.find Sys.file_exists
    [ "../examples/scripts"; "examples/scripts"; "../../examples/scripts" ]

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let mods = [ "patrol"; "kiting_archer"; "shield_wall"; "plague" ]

let compile_mod name =
  let path = Filename.concat (scripts_dir ()) (name ^ ".sgl") in
  Compile.compile ~consts:Sgl_battle.Scripts.constants
    ~schema:(Sgl_battle.Unit_types.schema ())
    (read_file path)

let test_mods_compile () =
  List.iter
    (fun name ->
      let prog = compile_mod name in
      Alcotest.(check bool)
        (name ^ " has an entry script")
        true
        (prog.Core_ir.scripts <> []))
    mods

let test_mods_use_indexes () =
  (* every shipped mod should plan at least one non-naive aggregate *)
  List.iter
    (fun name ->
      let prog = compile_mod name in
      let schema = prog.Core_ir.schema in
      let strategies =
        Array.to_list prog.Core_ir.aggregates
        |> List.map (fun agg -> Agg_plan.strategy_name (Agg_plan.analyze schema agg))
      in
      Alcotest.(check bool) (name ^ " aggregates indexed") true
        (strategies <> [] && List.for_all (fun s -> s <> "naive") strategies))
    mods

let test_mods_engines_agree () =
  let s = Sgl_battle.Unit_types.schema () in
  let units =
    Array.init 50 (fun i ->
        Sgl_battle.Unit_types.make_unit s ~key:i ~player:(i mod 2)
          ~klass:
            (match i mod 3 with
            | 0 -> Sgl_battle.D20.Knight
            | 1 -> Sgl_battle.D20.Archer
            | _ -> Sgl_battle.D20.Healer)
          ~x:(3 + (i * 5 mod 40))
          ~y:(3 + (i * 11 mod 25)))
  in
  List.iter
    (fun name ->
      let prog = compile_mod name in
      let entry = (List.hd prog.Core_ir.scripts).Core_ir.name in
      let prng = Prng.create 31 in
      let rand_for_key ~key i = Prng.script_random prng ~tick:0 ~key i in
      let run ev =
        let compiled = Exec.compile prog in
        let groups =
          [ { Exec.script = entry; members = Array.init (Array.length units) (fun i -> i) } ]
        in
        Combine.Acc.to_relation
          (Exec.run_tick compiled ~evaluator:ev ~units ~groups ~rand_for:rand_for_key)
      in
      let naive = run (Eval.naive ~schema:s ~aggregates:prog.Core_ir.aggregates) in
      let indexed = run (Eval.indexed ~schema:s ~aggregates:prog.Core_ir.aggregates ()) in
      Alcotest.(check bool) (name ^ ": naive = indexed") true
        (Relation.equal_as_multiset
           (Test_qopt.normalize_effects s naive)
           (Test_qopt.normalize_effects s indexed)))
    mods

let test_plague_stacks_damage () =
  (* two overlapping plague bearers: their miasma damage must SUM while
     their wards (inaura) must not stack *)
  let s = Sgl_battle.Unit_types.schema () in
  let units =
    [|
      Sgl_battle.Unit_types.make_unit s ~key:0 ~player:0 ~klass:Sgl_battle.D20.Healer ~x:10 ~y:10;
      Sgl_battle.Unit_types.make_unit s ~key:1 ~player:0 ~klass:Sgl_battle.D20.Healer ~x:12 ~y:10;
      Sgl_battle.Unit_types.make_unit s ~key:2 ~player:1 ~klass:Sgl_battle.D20.Knight ~x:11 ~y:10;
    |]
  in
  let prog = compile_mod "plague" in
  let compiled = Exec.compile prog in
  let groups = [ { Exec.script = "plague_bearer"; members = [| 0; 1 |] } ] in
  let acc =
    Exec.run_tick compiled
      ~evaluator:(Eval.indexed ~schema:s ~aggregates:prog.Core_ir.aggregates ())
      ~units ~groups ~rand_for:(fun ~key:_ _ -> 0)
  in
  let damage_ix = Schema.find s "damage" in
  (match Combine.Acc.find_opt acc 2 with
  | Some row ->
    Alcotest.(check (float 1e-9)) "miasma stacks" 2. (Value.to_float (Tuple.get row damage_ix))
  | None -> Alcotest.fail "victim untouched")

let suite =
  let tc = Alcotest.test_case in
  [
    ( "mods.scripts",
      [
        tc "all mods compile" `Quick test_mods_compile;
        tc "all mods plan indexes" `Quick test_mods_use_indexes;
        tc "engines agree on every mod" `Quick test_mods_engines_agree;
        tc "plague damage stacks, wards do not" `Quick test_plague_stacks_damage;
      ] );
  ]
