(* The observability layer: flight-recorder ring semantics, the
   CRC-framed dump/load cycle (including torn files), counter-delta
   correctness against the registry ground truth, the differential
   guarantee (obs-on is bit-identical to obs-off), and an HTTP smoke
   test that hits every live endpoint during a running battle and checks
   the bodies actually parse. *)

open Sgl_relalg
open Sgl_engine
open Sgl_battle
open Sgl_obs

(* ------------------------------------------------------------------ *)
(* A tiny JSON reader — just enough to assert the exposition formats
   are well-formed and to pull out scalar fields. *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Num of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  exception Bad of string

  let parse (s : string) : t =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then s.[!pos] else '\000' in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with ' ' | '\t' | '\n' | '\r' -> advance (); skip_ws () | _ -> ()
    in
    let expect c = if peek () = c then advance () else fail (Printf.sprintf "expected %c" c) in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then (pos := !pos + l; v)
      else fail ("expected " ^ word)
    in
    let string_ () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' -> advance ()
          | '\\' ->
            advance ();
            (match peek () with
            | '"' -> Buffer.add_char b '"'; advance ()
            | '\\' -> Buffer.add_char b '\\'; advance ()
            | '/' -> Buffer.add_char b '/'; advance ()
            | 'n' -> Buffer.add_char b '\n'; advance ()
            | 't' -> Buffer.add_char b '\t'; advance ()
            | 'r' -> Buffer.add_char b '\r'; advance ()
            | 'b' -> Buffer.add_char b '\b'; advance ()
            | 'f' -> Buffer.add_char b '\012'; advance ()
            | 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* BMP-only: fine for our own ASCII output *)
              if code < 128 then Buffer.add_char b (Char.chr code)
              else Buffer.add_string b (Printf.sprintf "\\u%04x" code)
            | _ -> fail "bad escape");
            go ()
          | c -> Buffer.add_char b c; advance (); go ()
      in
      go ();
      Buffer.contents b
    in
    let number () =
      let start = !pos in
      let is_num_char c =
        match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
      in
      while !pos < n && is_num_char s.[!pos] do advance () done;
      if !pos = start then fail "expected number";
      float_of_string (String.sub s start (!pos - start))
    in
    let rec value () =
      skip_ws ();
      match peek () with
      | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (advance (); Obj [])
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_ () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); members ((k, v) :: acc)
            | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or }"
          in
          members []
        end
      | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (advance (); Arr [])
        else begin
          let rec elements acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | ',' -> advance (); elements (v :: acc)
            | ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ]"
          in
          elements []
        end
      | '"' -> Str (string_ ())
      | 't' -> literal "true" (Bool true)
      | 'f' -> literal "false" (Bool false)
      | 'n' -> literal "null" Null
      | _ -> Num (number ())
    in
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v

  let member (k : string) (j : t) : t =
    match j with
    | Obj kvs -> (try List.assoc k kvs with Not_found -> raise (Bad ("missing member " ^ k)))
    | _ -> raise (Bad ("not an object looking for " ^ k))

  let num = function Num f -> f | _ -> raise (Bad "expected number")
  let bool_ = function Bool b -> b | _ -> raise (Bad "expected bool")
  let arr = function Arr l -> l | _ -> raise (Bad "expected array")
end

(* ------------------------------------------------------------------ *)
(* Helpers *)

let mk_sample (i : int) : Flight.sample =
  {
    Simulation.s_tick = i;
    s_units = 100 + i;
    s_digest = 0xBEEF0000 lor i;
    s_tick_s = 0.001 *. float_of_int i;
    s_decision_s = 0.0005 *. float_of_int i;
    s_post_s = 1e-4;
    s_movement_s = 2e-4;
    s_death_s = 3e-5;
    s_deaths = i mod 3;
    s_resurrections = i mod 2;
    s_faults = 0;
    s_rollbacks = 0;
    s_retries = 0;
    s_demotions = 0;
    s_index_builds = 2;
    s_index_reuses = i mod 5;
    s_evaluator = "indexed";
  }

let ticks_of (samples : Flight.sample list) : int list =
  List.map (fun s -> s.Simulation.s_tick) samples

let with_temp (f : string -> unit) : unit =
  let path = Filename.temp_file "sgl_flight" ".dump" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* ------------------------------------------------------------------ *)
(* The ring *)

let flight_ring_wraparound () =
  let fl = Flight.create ~capacity:8 in
  Alcotest.(check int) "capacity" 8 (Flight.capacity fl);
  Alcotest.(check (option reject)) "empty last" None (Flight.last fl);
  for i = 1 to 20 do
    Flight.record fl (mk_sample i)
  done;
  Alcotest.(check int) "total" 20 (Flight.total fl);
  Alcotest.(check int) "length" 8 (Flight.length fl);
  Alcotest.(check (list int)) "tail keeps newest, oldest first"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (ticks_of (Flight.tail fl));
  Alcotest.(check (list int)) "tail ~n" [ 18; 19; 20 ] (ticks_of (Flight.tail ~n:3 fl));
  (match Flight.last fl with
  | Some s -> Alcotest.(check int) "last tick" 20 s.Simulation.s_tick
  | None -> Alcotest.fail "last after records");
  Alcotest.check_raises "capacity must be positive"
    (Invalid_argument "Flight.create: capacity must be positive") (fun () ->
      ignore (Flight.create ~capacity:0))

(* ------------------------------------------------------------------ *)
(* Dump / load *)

let flight_dump_load_roundtrip () =
  with_temp (fun path ->
      let fl = Flight.create ~capacity:16 in
      for i = 1 to 10 do
        Flight.record fl (mk_sample i)
      done;
      Flight.dump fl ~path;
      match Flight.load ~path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok (records, torn) ->
        Alcotest.(check bool) "not torn" false torn;
        Alcotest.(check int) "record count" 10 (List.length records);
        List.iteri
          (fun i got ->
            let expect = mk_sample (i + 1) in
            if compare expect got <> 0 then
              Alcotest.failf "record %d did not round-trip" (i + 1))
          records)

let flight_sink_stream () =
  with_temp (fun path ->
      let sink = Flight.sink_open ~path in
      for i = 1 to 3 do
        Flight.sink_record sink (mk_sample i)
      done;
      Flight.sink_close sink;
      Flight.sink_close sink (* idempotent *);
      match Flight.load ~path with
      | Error e -> Alcotest.failf "load: %s" e
      | Ok (records, torn) ->
        Alcotest.(check bool) "not torn" false torn;
        Alcotest.(check (list int)) "streamed ticks" [ 1; 2; 3 ] (ticks_of records))

(* A file cut mid-frame or with a flipped byte must yield every frame
   before the damage plus the torn flag — the post-SIGKILL shape. *)
let flight_torn_tolerance () =
  with_temp (fun path ->
      let fl = Flight.create ~capacity:8 in
      for i = 1 to 5 do
        Flight.record fl (mk_sample i)
      done;
      Flight.dump fl ~path;
      let whole = In_channel.with_open_bin path In_channel.input_all in
      (* truncated mid-frame *)
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (String.sub whole 0 (String.length whole - 3)));
      (match Flight.load ~path with
      | Error e -> Alcotest.failf "truncated load: %s" e
      | Ok (records, torn) ->
        Alcotest.(check bool) "truncated is torn" true torn;
        Alcotest.(check (list int)) "frames before the cut survive" [ 1; 2; 3; 4 ]
          (ticks_of records));
      (* corrupted byte inside the last frame's payload *)
      let corrupt = Bytes.of_string whole in
      Bytes.set corrupt (String.length whole - 10)
        (Char.chr (Char.code (Bytes.get corrupt (String.length whole - 10)) lxor 0xFF));
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_bytes oc corrupt);
      (match Flight.load ~path with
      | Error e -> Alcotest.failf "corrupt load: %s" e
      | Ok (records, torn) ->
        Alcotest.(check bool) "corrupt frame is torn" true torn;
        Alcotest.(check (list int)) "frames before the corruption survive" [ 1; 2; 3; 4 ]
          (ticks_of records));
      (* a bad header is an error, not a torn file *)
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc "not a dump");
      match Flight.load ~path with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "bad header must not load")

let flight_json_parses () =
  let s = Flight.sample_json (mk_sample 7) in
  let j = Json.parse s in
  Alcotest.(check int) "tick" 7 (int_of_float (Json.num (Json.member "tick" j)));
  Alcotest.(check int) "units" 107 (int_of_float (Json.num (Json.member "units" j)));
  let arr = Json.parse (Flight.to_json [ mk_sample 1; mk_sample 2 ]) in
  Alcotest.(check int) "array length" 2 (List.length (Json.arr arr))

(* ------------------------------------------------------------------ *)
(* Counter deltas vs the registry ground truth *)

(* Each sample carries per-tick deltas; summed over a full run they must
   reproduce the cumulative report exactly, and the digests must match
   what the codec computes over the final committed units. *)
let flight_counter_deltas () =
  let scenario = Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 25) () in
  let sim = Scenario.simulation ~seed:5 ~evaluator:Simulation.Indexed scenario in
  let fl = Flight.create ~capacity:64 in
  Simulation.set_observer sim (Some (Flight.record fl));
  Simulation.run sim ~ticks:20;
  Simulation.set_observer sim None;
  let samples = Flight.tail fl in
  Alcotest.(check int) "one sample per tick" 20 (List.length samples);
  Alcotest.(check (list int)) "consecutive ticks"
    (List.init 20 (fun i -> i + 1))
    (ticks_of samples);
  let sum f = List.fold_left (fun acc s -> acc + f s) 0 samples in
  let r = Simulation.report sim in
  Alcotest.(check int) "deaths" r.Simulation.deaths (sum (fun s -> s.Simulation.s_deaths));
  Alcotest.(check int) "resurrections" r.Simulation.resurrections
    (sum (fun s -> s.Simulation.s_resurrections));
  Alcotest.(check int) "rollbacks" r.Simulation.rollbacks
    (sum (fun s -> s.Simulation.s_rollbacks));
  Alcotest.(check int) "retries" r.Simulation.retries (sum (fun s -> s.Simulation.s_retries));
  Alcotest.(check int) "index builds" r.Simulation.index_builds
    (sum (fun s -> s.Simulation.s_index_builds));
  Alcotest.(check int) "index reuses" r.Simulation.index_reuses
    (sum (fun s -> s.Simulation.s_index_reuses));
  (match Flight.last fl with
  | None -> Alcotest.fail "no samples"
  | Some s ->
    Alcotest.(check int) "final digest"
      (Sgl_persist.Codec.units_digest (Simulation.units sim))
      s.Simulation.s_digest;
    Alcotest.(check int) "final population" (Array.length (Simulation.units sim))
      s.Simulation.s_units)

(* ------------------------------------------------------------------ *)
(* The differential guarantee: full obs stack on vs everything off *)

let sorted_units (sim : Simulation.t) : Tuple.t array =
  let s = Simulation.schema sim in
  let out = Array.map Tuple.copy (Simulation.units sim) in
  Array.sort (fun a b -> compare (Tuple.key s a) (Tuple.key s b)) out;
  out

let obs_is_invisible () =
  let run ~obs =
    let scenario = Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 30) () in
    let sim = Scenario.simulation ~seed:23 ~evaluator:Simulation.Indexed scenario in
    let live =
      if not obs then None
      else begin
        let path = Filename.temp_file "sgl_obs" ".dump" in
        let live =
          Live.create ~flight_capacity:8 ~dump_path:path ~sim ~prog:(Scripts.compile ()) ()
        in
        Some (live, path)
      end
    in
    Simulation.run sim ~ticks:15;
    (* exercise the read side mid-state, then tear down *)
    (match live with
    | None -> ()
    | Some (live, path) ->
      let h = Live.handler live in
      List.iter
        (fun p -> ignore (h ~path:p ~params:[]))
        [ "/metrics"; "/stats"; "/ticks"; "/health" ];
      ignore (h ~path:"/query" ~params:[ ("q", "count(*) where e.health > 0") ]);
      Live.stop live;
      (try Sys.remove path with Sys_error _ -> ()));
    (sorted_units sim, Sgl_persist.Codec.units_digest (Simulation.units sim))
  in
  let baseline, base_digest = run ~obs:false in
  let observed, obs_digest = run ~obs:true in
  Alcotest.(check int) "digest identical" base_digest obs_digest;
  Alcotest.(check int) "population" (Array.length baseline) (Array.length observed);
  Array.iteri
    (fun i e ->
      if compare e observed.(i) <> 0 then
        Alcotest.failf "unit %d diverged under observation@.expected %s@.got      %s" i
          (Fmt.str "%a" Tuple.pp e)
          (Fmt.str "%a" Tuple.pp observed.(i)))
    baseline

(* ------------------------------------------------------------------ *)
(* HTTP smoke: every endpoint over a real socket during a live battle *)

let http_get (port : int) (target : string) : int * string * string =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req = Printf.sprintf "GET %s HTTP/1.0\r\nHost: localhost\r\n\r\n" target in
      let _ = Unix.write_substring fd req 0 (String.length req) in
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec drain () =
        let n = Unix.read fd chunk 0 (Bytes.length chunk) in
        if n > 0 then begin
          Buffer.add_subbytes buf chunk 0 n;
          drain ()
        end
      in
      drain ();
      let raw = Buffer.contents buf in
      let sep =
        let rec find i =
          if i + 4 > String.length raw then
            Alcotest.failf "no header terminator in response to %s" target
          else if String.sub raw i 4 = "\r\n\r\n" then i
          else find (i + 1)
        in
        find 0
      in
      let headers = String.sub raw 0 sep in
      let body = String.sub raw (sep + 4) (String.length raw - sep - 4) in
      let status =
        match String.split_on_char ' ' (List.hd (String.split_on_char '\r' headers)) with
        | _ :: code :: _ -> int_of_string code
        | _ -> Alcotest.failf "bad status line for %s" target
      in
      (status, headers, body))

let prometheus_well_formed (body : string) : unit =
  let metric_line line =
    (* name{labels} value  |  name value *)
    match String.rindex_opt line ' ' with
    | None -> Alcotest.failf "metric line without value: %s" line
    | Some i ->
      let v = String.sub line (i + 1) (String.length line - i - 1) in
      (match float_of_string_opt v with
      | Some _ -> ()
      | None -> Alcotest.failf "unparsable metric value %S in: %s" v line);
      let name = String.sub line 0 i in
      if not (String.length name >= 4 && String.sub name 0 4 = "sgl_") then
        Alcotest.failf "metric without sgl_ prefix: %s" line
  in
  String.split_on_char '\n' body
  |> List.iter (fun line ->
         if line <> "" && line.[0] <> '#' then metric_line line)

let http_smoke () =
  let scenario = Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 20) () in
  let sim = Scenario.simulation ~seed:9 ~evaluator:Simulation.Indexed scenario in
  let live = Live.create ~flight_capacity:32 ~sim ~prog:(Scripts.compile ()) () in
  Fun.protect
    ~finally:(fun () -> Live.stop live)
    (fun () ->
      let port = Live.serve live ~port:0 in
      Alcotest.(check bool) "ephemeral port" true (port > 0);
      Alcotest.(check int) "serve is idempotent" port (Live.serve live ~port:0);
      (* before the first tick the query port has no committed snapshot *)
      let status, _, _ = http_get port "/query?q=count(*)" in
      Alcotest.(check int) "query before first commit" 503 status;
      Simulation.run sim ~ticks:12;
      let n_units = Array.length (Simulation.units sim) in
      (* /health *)
      let status, _, body = http_get port "/health" in
      Alcotest.(check int) "health status" 200 status;
      let j = Json.parse body in
      Alcotest.(check bool) "ready" true (Json.bool_ (Json.member "ready" j));
      Alcotest.(check int) "health tick" 12 (int_of_float (Json.num (Json.member "tick" j)));
      Alcotest.(check int) "no anomaly flags" 0 (List.length (Json.arr (Json.member "flags" j)));
      (* /metrics *)
      let status, headers, body = http_get port "/metrics" in
      Alcotest.(check int) "metrics status" 200 status;
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "prometheus content type" true
        (contains headers "text/plain; version=0.0.4");
      Alcotest.(check bool) "tick histogram exported" true
        (contains body "sgl_sim_tick_seconds");
      prometheus_well_formed body;
      (* /stats *)
      let status, _, body = http_get port "/stats" in
      Alcotest.(check int) "stats status" 200 status;
      let j = Json.parse body in
      Alcotest.(check int) "stats tick" 12 (int_of_float (Json.num (Json.member "tick" j)));
      ignore (Json.member "report" j);
      ignore (Json.member "sim" j);
      ignore (Json.member "ambient" j);
      (* /ticks *)
      let status, _, body = http_get port "/ticks?n=5" in
      Alcotest.(check int) "ticks status" 200 status;
      let frames = Json.arr (Json.parse body) in
      Alcotest.(check int) "ticks tail length" 5 (List.length frames);
      let last = List.nth frames 4 in
      Alcotest.(check int) "newest frame is the last tick" 12
        (int_of_float (Json.num (Json.member "tick" last)));
      (* /explain *)
      let status, _, body = http_get port "/explain" in
      Alcotest.(check int) "explain status" 200 status;
      Alcotest.(check bool) "explain non-empty" true (String.length body > 0);
      (* /query *)
      let status, _, body = http_get port "/query?q=count(*)" in
      Alcotest.(check int) "query status" 200 status;
      let j = Json.parse body in
      Alcotest.(check int) "count(*) sees the whole population" n_units
        (int_of_float (Json.num (Json.member "value" j)));
      Alcotest.(check bool) "uncorrelated" false (Json.bool_ (Json.member "correlated" j));
      (* /query error paths *)
      let status, _, _ = http_get port "/query" in
      Alcotest.(check int) "missing q" 400 status;
      let status, _, _ = http_get port "/query?q=count(*)%20where%20random()%20%3C%2010" in
      Alcotest.(check int) "random() rejected" 400 status;
      (* unknown path *)
      let status, _, _ = http_get port "/nothing-here" in
      Alcotest.(check int) "404 fallback" 404 status)

(* ------------------------------------------------------------------ *)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "obs.flight",
      [
        tc "ring wraparound" `Quick flight_ring_wraparound;
        tc "dump/load round-trip" `Quick flight_dump_load_roundtrip;
        tc "streaming sink" `Quick flight_sink_stream;
        tc "torn-file tolerance" `Quick flight_torn_tolerance;
        tc "sample json parses" `Quick flight_json_parses;
        tc "counter deltas vs registry" `Quick flight_counter_deltas;
      ] );
    ( "obs.differential",
      [ tc "bit-identical with obs on" `Slow obs_is_invisible ] );
    ("obs.http", [ tc "every endpoint live" `Quick http_smoke ]);
  ]
