(* The parallel decision phase: Domain_pool unit tests plus the
   differential harness pinning determinism.

   The contract under test: [Simulation.Parallel { domains = k }] produces
   *bit-identical* unit states to [Naive] and [Indexed] for every k —
   including k = 1 (degenerate fan-out) and k = 7 (prime, so chunks split
   unevenly and never align with script-group or army boundaries).  The
   argument is algebraic — per-chunk effect bags merge through the
   combination operator (+), which is associative and commutative — and
   exactness of float sums on integer lattices turns "same multiset of
   contributions" into "same bits". *)

open Sgl_util
open Sgl_relalg
open Sgl_engine
open Sgl_battle

(* ------------------------------------------------------------------ *)
(* Domain_pool *)

let pool_map () =
  let pool = Domain_pool.create ~domains:3 in
  let squares = Domain_pool.parallel_map pool (fun x -> x * x) (Array.init 20 (fun i -> i)) in
  Alcotest.(check (array int)) "squares" (Array.init 20 (fun i -> i * i)) squares;
  (* the pool is reusable: same workers, new job *)
  let negs = Domain_pool.parallel_map pool (fun x -> -x) (Array.init 5 (fun i -> i)) in
  Alcotest.(check (array int)) "reused" [| 0; -1; -2; -3; -4 |] negs;
  (* fewer items than lanes *)
  let one = Domain_pool.parallel_map pool (fun x -> x + 1) [| 41 |] in
  Alcotest.(check (array int)) "short input" [| 42 |] one;
  Alcotest.(check (array int)) "empty input" [||] (Domain_pool.parallel_map pool (fun x -> x) [||]);
  Domain_pool.shutdown pool

let pool_exception () =
  let pool = Domain_pool.create ~domains:4 in
  let boom =
    try
      ignore (Domain_pool.parallel_map pool (fun x -> if x = 5 then failwith "boom" else x)
                (Array.init 8 (fun i -> i)));
      false
    with Failure m -> m = "boom"
  in
  Alcotest.(check bool) "exception re-raised" true boom;
  (* a failed map leaves the pool consistent *)
  let again = Domain_pool.parallel_map pool (fun x -> x * 2) [| 1; 2; 3; 4; 5 |] in
  Alcotest.(check (array int)) "usable after failure" [| 2; 4; 6; 8; 10 |] again;
  Domain_pool.shutdown pool

let chunk_ranges () =
  let check ~n ~chunks =
    let ranges = Domain_pool.chunk_ranges ~n ~chunks in
    Alcotest.(check int) "chunk count" (max 1 chunks) (Array.length ranges);
    (* the ranges tile [0, n) exactly, in order, balanced to within one *)
    let expected_lo = ref 0 in
    Array.iter
      (fun (lo, hi) ->
        Alcotest.(check int) "contiguous" !expected_lo lo;
        Alcotest.(check bool) "non-negative" true (hi >= lo);
        Alcotest.(check bool) "balanced"
          true
          (hi - lo >= n / max 1 chunks && hi - lo <= (n / max 1 chunks) + 1);
        expected_lo := hi)
      ranges;
    Alcotest.(check int) "covers n" n !expected_lo
  in
  check ~n:10 ~chunks:3;
  check ~n:100 ~chunks:7;
  check ~n:64 ~chunks:64;
  check ~n:3 ~chunks:8 (* more chunks than items: trailing chunks are empty *);
  check ~n:0 ~chunks:4;
  check ~n:17 ~chunks:1

(* ------------------------------------------------------------------ *)
(* Differential harness *)

(* Canonical view of a simulation's unit state: sorted by key (unique in
   every scenario here), compared tuple-by-tuple.  [compare] rather than
   [(=)] so the check is total even if a NaN ever leaks into a state. *)
let sorted_units (sim : Simulation.t) : Tuple.t array =
  let s = Simulation.schema sim in
  let out = Array.map Tuple.copy (Simulation.units sim) in
  Array.sort (fun a b -> compare (Tuple.key s a) (Tuple.key s b)) out;
  out

let check_states ~(msg : string) (expected : Tuple.t array) (got : Tuple.t array) =
  Alcotest.(check int) (msg ^ ": population") (Array.length expected) (Array.length got);
  Array.iteri
    (fun i e ->
      if compare e got.(i) <> 0 then
        Alcotest.failf "%s: unit %d diverged@.expected %s@.got      %s" msg i
          (Fmt.str "%a" Tuple.pp e) (Fmt.str "%a" Tuple.pp got.(i)))
    expected

let domain_counts = [ 1; 2; 4; 7 ]

(* Run one scenario under every evaluator and insist on identical states
   after [ticks]. *)
let differential ~(ticks : int) ~(make_sim : Simulation.evaluator_kind -> Simulation.t) : unit =
  let run evaluator =
    let sim = make_sim evaluator in
    Simulation.run sim ~ticks;
    Alcotest.(check int) "tick count" ticks (Simulation.tick_count sim);
    sorted_units sim
  in
  let baseline = run Simulation.Naive in
  check_states ~msg:"indexed vs naive" baseline (run Simulation.Indexed);
  List.iter
    (fun domains ->
      check_states
        ~msg:(Fmt.str "parallel:%d vs naive" domains)
        baseline
        (run (Simulation.Parallel { domains })))
    domain_counts

let formation_battle () =
  differential ~ticks:50 ~make_sim:(fun evaluator ->
      let scenario =
        Scenario.setup ~density:0.02
          ~per_side:(Scenario.standard_mix 60)
          ()
      in
      Scenario.simulation ~seed:11 ~evaluator scenario)

(* The frost-mage scenario (Section 2.2's priority-set effects): Pmax
   combination under chunked evaluation, with overlapping cones from many
   casters so chunk boundaries cut straight through aura overlaps. *)
let frost_schema () =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "player" Value.TInt;
      Schema.attr "rank" Value.TInt; (* 0 = grunt, 1 = frost mage, 2 = archmage *)
      Schema.attr "posx" Value.TFloat;
      Schema.attr "posy" Value.TFloat;
      Schema.attr "speed" Value.TFloat;
      Schema.attr "base_speed" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_x" Value.TFloat;
      Schema.attr ~tag:Schema.Sum "movevect_y" Value.TFloat;
      Schema.attr ~tag:Schema.Pmax "setspeed" Value.TVec; (* (priority, value) *)
    ]

let frost_behaviour =
  {|
action ConeOfCold(u) {
  on all(e.player <> u.player
         and e.posx >= u.posx - 8.0 and e.posx <= u.posx + 8.0
         and e.posy >= u.posy - 8.0 and e.posy <= u.posy + 8.0) {
    setspeed <- (1.0, 0.0);
  }
}

action GreaterHaste(u) {
  on all(e.player <> u.player and e.rank = 0
         and e.posx >= u.posx - 6.0 and e.posx <= u.posx + 6.0
         and e.posy >= u.posy - 3.0 and e.posy <= u.posy + 3.0) {
    setspeed <- (2.0, 3.0);
  }
}

action March(u) {
  on self { movevect_x <- 5; }
}

script grunt(u) { perform March(u); }
script frost_mage(u) { perform ConeOfCold(u); }
script archmage(u) { perform GreaterHaste(u); }
|}

let frost_mage_sim (evaluator : Simulation.evaluator_kind) : Simulation.t =
  let schema = frost_schema () in
  let open Sgl_lang in
  let prog = Compile.compile ~schema frost_behaviour in
  let make ~key ~player ~rank ~x ~y =
    Tuple.of_list schema
      [
        Value.Int key; Value.Int player; Value.Int rank; Value.Float x; Value.Float y;
        Value.Float 2.; Value.Float 2.; Value.Float 0.; Value.Float 0.;
        Value.Vec (Vec2.make 0. 0.);
      ]
  in
  (* 60 grunts on an integer lattice marching into a picket line of 14
     frost mages and 5 archmages with heavily overlapping auras *)
  let grunts =
    List.init 60 (fun i ->
        make ~key:i ~player:0 ~rank:0
          ~x:(float_of_int (8 + (i mod 6)))
          ~y:(float_of_int (2 + (2 * (i / 6)))))
  in
  let mages =
    List.init 14 (fun i ->
        make ~key:(100 + i) ~player:1 ~rank:1 ~x:(float_of_int (18 + (i mod 3)))
          ~y:(float_of_int (1 + (2 * i / 2))))
  in
  let archmages =
    List.init 5 (fun i ->
        make ~key:(200 + i) ~player:1 ~rank:2 ~x:17. ~y:(float_of_int (4 + (4 * i))))
  in
  let units = Array.of_list (grunts @ mages @ archmages) in
  let speed = Schema.find schema "speed" and setspeed = Schema.find schema "setspeed" in
  let base_speed = Schema.find schema "base_speed" in
  let open Expr in
  let hit = MinOf (Const (Value.Float 1.), MaxOf (Const (Value.Float 0.), VecX (EAttr setspeed))) in
  let new_speed =
    Binop
      ( Add,
        Binop (Mul, UAttr base_speed, Binop (Sub, Const (Value.Float 1.), hit)),
        Binop (Mul, VecY (EAttr setspeed), hit) )
  in
  let rank = Schema.find schema "rank" in
  let config =
    {
      Simulation.prog;
      script_of =
        (fun u ->
          Some
            (match Value.to_int (Tuple.get u rank) with
            | 1 -> "frost_mage"
            | 2 -> "archmage"
            | _ -> "grunt"));
      postprocess =
        Postprocess.make ~schema ~updates:[ (speed, new_speed) ]
          ~remove_when:(Const (Value.Bool false));
      movement =
        Some
          {
            Movement.posx = Schema.find schema "posx";
            posy = Schema.find schema "posy";
            mvx = Schema.find schema "movevect_x";
            mvy = Schema.find schema "movevect_y";
            speed = 3.;
            speed_attr = Some speed;
            width = 80;
            height = 48;
          };
      death = Simulation.Remove;
      seed = 8;
      optimize = true;
    }
  in
  Simulation.create config ~evaluator ~units

let frost_mage () = differential ~ticks:50 ~make_sim:frost_mage_sim

(* [Simulation.run] must execute exactly [ticks] steps even while the
   death rule rewrites the unit array every tick (resurrection keeps the
   population constant; removal shrinks it) — the loop bound is fixed up
   front, not re-read from mutated state. *)
let resurrection_fixed_ticks () =
  let scenario =
    Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 40) ()
  in
  let population = Array.length scenario.Scenario.units in
  let sim =
    Scenario.simulation ~seed:3 ~resurrect:true
      ~evaluator:(Simulation.Parallel { domains = 2 })
      scenario
  in
  Simulation.run sim ~ticks:50;
  Alcotest.(check int) "exactly 50 ticks" 50 (Simulation.tick_count sim);
  Alcotest.(check int) "resurrection keeps the workload constant" population
    (Array.length (Simulation.units sim));
  (* a second run starts from the current tick and adds exactly as asked *)
  Simulation.run sim ~ticks:7;
  Alcotest.(check int) "incremental run" 57 (Simulation.tick_count sim)

let suite =
  [
    ( "parallel.pool",
      [
        Alcotest.test_case "parallel_map computes and reuses" `Quick pool_map;
        Alcotest.test_case "exceptions propagate, pool survives" `Quick pool_exception;
        Alcotest.test_case "chunk_ranges tiles [0, n)" `Quick chunk_ranges;
      ] );
    ( "parallel.differential",
      [
        Alcotest.test_case "formation battle: naive = indexed = parallel 1/2/4/7" `Slow
          formation_battle;
        Alcotest.test_case "frost mage (Pmax): naive = indexed = parallel 1/2/4/7" `Slow
          frost_mage;
        Alcotest.test_case "resurrection: run executes a fixed tick count" `Quick
          resurrection_fixed_ticks;
      ] );
  ]
