(* Durable simulation state: codec round-trips, checksum/corruption
   pinning, journal tearing, generation fallback, and the recovery
   differential — restore-at-tick-k then run to n must be bit-identical
   to an uninterrupted n-tick run for every evaluator, including under a
   Degrade retry and a quarantine taken before the checkpoint.

   The corruption tests damage real files on purpose: every one must be
   *detected* (Codec.Corrupt or generation fallback), never silently
   loaded.  The differentials reuse the shared helpers in
   [Test_parallel]. *)

open Sgl_util
open Sgl_relalg
open Sgl_engine
open Sgl_battle
module Codec = Sgl_persist.Codec
module Checkpoint = Sgl_persist.Checkpoint
module Journal = Sgl_persist.Journal

let qtest = QCheck_alcotest.to_alcotest
let with_injection f = Fun.protect ~finally:Fault_inject.reset f

(* ------------------------------------------------------------------ *)
(* Scratch directories *)

let dir_counter = ref 0

let rec rm_rf (path : string) : unit =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun name -> rm_rf (Filename.concat path name)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path

let with_dir (f : string -> 'a) : 'a =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sgl-persist-test-%d-%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Unix.mkdir dir 0o755;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file p s =
  let oc = open_out_bin p in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc s)

let flip_byte (p : string) ~(at : int) : unit =
  let s = Bytes.of_string (read_file p) in
  Bytes.set s at (Char.chr (Char.code (Bytes.get s at) lxor 0x40));
  write_file p (Bytes.to_string s)

(* ------------------------------------------------------------------ *)
(* Codec round-trips *)

(* Every attribute type and every combination tag in one schema. *)
let rich_schema () =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "posx" Value.TFloat;
      Schema.attr "alive" Value.TBool;
      Schema.attr "aim" Value.TVec;
      Schema.attr ~tag:Schema.Sum "heal" Value.TInt;
      Schema.attr ~tag:Schema.Max "spd" Value.TFloat;
      Schema.attr ~tag:Schema.Min "cold" Value.TFloat;
      Schema.attr ~tag:Schema.Pmax "setv" Value.TVec;
    ]

let mk_state ?(tick = 17) ?(seed = 5) ?(quarantined = []) ?(counters = [])
    ?(degradations = []) units =
  { Checkpoint.tick; seed; cache_epoch = tick; units; quarantined; counters; degradations }

let roundtrip ~(schema : Schema.t) (st : Checkpoint.state) : Checkpoint.state =
  with_dir (fun dir ->
      let path = Checkpoint.save ~dir ~fsync:false ~schema st in
      Checkpoint.load ~schema path)

let check_state_eq (a : Checkpoint.state) (b : Checkpoint.state) =
  Alcotest.(check int) "tick" a.Checkpoint.tick b.Checkpoint.tick;
  Alcotest.(check int) "seed" a.Checkpoint.seed b.Checkpoint.seed;
  Alcotest.(check int) "population"
    (Array.length a.Checkpoint.units)
    (Array.length b.Checkpoint.units);
  (* polymorphic compare is bit-faithful here ([compare nan nan = 0]),
     which is exactly the codec's contract *)
  if compare a.Checkpoint.units b.Checkpoint.units <> 0 then Alcotest.fail "units diverged";
  Alcotest.(check (list string)) "quarantined" a.Checkpoint.quarantined
    b.Checkpoint.quarantined;
  Alcotest.(check (list (pair string int))) "counters" a.Checkpoint.counters
    b.Checkpoint.counters;
  if compare a.Checkpoint.degradations b.Checkpoint.degradations <> 0 then
    Alcotest.fail "degradations diverged"

let sample_tuple ~key =
  [|
    Value.Int key;
    Value.Float 1.5;
    Value.Bool true;
    Value.Vec (Vec2.make 0.25 (-3.));
    Value.Int 7;
    Value.Float infinity;
    Value.Float neg_infinity;
    Value.Vec (Vec2.make neg_infinity 0.);
  |]

let roundtrip_pinned () =
  let schema = rich_schema () in
  (* empty relation *)
  check_state_eq (mk_state [||]) (roundtrip ~schema (mk_state [||]));
  (* single tuple exercising every type, with infinities *)
  let one = mk_state [| sample_tuple ~key:3 |] in
  check_state_eq one (roundtrip ~schema one);
  (* duplicate keys survive verbatim (the codec is positional) *)
  let dup = mk_state [| sample_tuple ~key:9; sample_tuple ~key:9; sample_tuple ~key:9 |] in
  check_state_eq dup (roundtrip ~schema dup);
  (* bookkeeping fields *)
  let full =
    mk_state ~tick:123 ~seed:77
      ~quarantined:[ "archer"; "healer" ]
      ~counters:[ ("deaths", 4); ("resurrections", 4) ]
      ~degradations:[ (9, "parallel:4", "indexed"); (11, "indexed", "naive") ]
      [| sample_tuple ~key:0 |]
  in
  check_state_eq full (roundtrip ~schema full)

let gen_value (ty : Value.ty) : Value.t QCheck.Gen.t =
  let open QCheck.Gen in
  match ty with
  | Value.TInt -> map (fun i -> Value.Int i) int
  | Value.TFloat -> map (fun f -> Value.Float f) float
  | Value.TBool -> map (fun b -> Value.Bool b) bool
  | Value.TVec -> map2 (fun x y -> Value.Vec (Vec2.make x y)) float float

let gen_units (schema : Schema.t) : Tuple.t array QCheck.Gen.t =
  let open QCheck.Gen in
  let tys = List.map (fun (a : Schema.attr) -> a.Schema.ty) (Schema.attrs schema) in
  let tuple = map Array.of_list (flatten_l (List.map gen_value tys)) in
  array_size (int_bound 40) tuple

(* Satellite property: [restore (save state) = state] over randomized
   relations — empty arrays, duplicate keys (the key generator is
   unconstrained) and every attribute type. *)
let roundtrip_prop =
  let schema = rich_schema () in
  QCheck.Test.make ~count:30 ~name:"restore (save state) = state"
    (QCheck.make (gen_units schema))
    (fun units ->
      let st = mk_state units in
      let back = roundtrip ~schema st in
      compare st.Checkpoint.units back.Checkpoint.units = 0
      && st.Checkpoint.tick = back.Checkpoint.tick
      && st.Checkpoint.seed = back.Checkpoint.seed)

let units_digest () =
  let a = [| sample_tuple ~key:1; sample_tuple ~key:2 |] in
  let b = [| sample_tuple ~key:1; sample_tuple ~key:2 |] in
  Alcotest.(check int) "digest is a pure function of content" (Codec.units_digest a)
    (Codec.units_digest b);
  let c = [| sample_tuple ~key:2; sample_tuple ~key:1 |] in
  Alcotest.(check bool) "digest is order-sensitive" true
    (Codec.units_digest a <> Codec.units_digest c);
  Tuple.set b.(0) 4 (Value.Int 8);
  Alcotest.(check bool) "digest sees a one-slot change" true
    (Codec.units_digest a <> Codec.units_digest b)

(* ------------------------------------------------------------------ *)
(* Corruption pinning *)

let must_corrupt ~(msg : string) (f : unit -> 'a) : string =
  match f () with
  | _ -> Alcotest.failf "%s: corruption was not detected" msg
  | exception Codec.Corrupt m -> m

let with_saved (f : schema:Schema.t -> path:string -> 'a) : 'a =
  let schema = rich_schema () in
  with_dir (fun dir ->
      let st = mk_state [| sample_tuple ~key:0; sample_tuple ~key:1 |] in
      let path = Checkpoint.save ~dir ~fsync:false ~schema st in
      f ~schema ~path)

let truncation_detected () =
  with_saved (fun ~schema ~path ->
      let body = read_file path in
      let n = String.length body in
      List.iter
        (fun keep ->
          write_file path (String.sub body 0 keep);
          let _ : string =
            must_corrupt
              ~msg:(Printf.sprintf "truncated to %d bytes" keep)
              (fun () -> Checkpoint.load ~schema path)
          in
          ())
        [ 0; 7; 8; 11; 20; n / 2; n - 5; n - 1 ])

let flipped_bit_detected () =
  with_saved (fun ~schema ~path ->
      let body = read_file path in
      let n = String.length body in
      List.iter
        (fun at ->
          write_file path body;
          flip_byte path ~at;
          let _ : string =
            must_corrupt
              ~msg:(Printf.sprintf "bit flipped at offset %d" at)
              (fun () -> Checkpoint.load ~schema path)
          in
          ())
        [ 2; 20; n / 3; n / 2; 2 * n / 3; n - 6 ])

let unknown_version_detected () =
  with_saved (fun ~schema ~path ->
      let body = Bytes.of_string (read_file path) in
      (* the version u32 sits right after the 8-byte magic *)
      Bytes.set_int32_le body 8 99l;
      write_file path (Bytes.to_string body);
      let msg = must_corrupt ~msg:"version 99" (fun () -> Checkpoint.load ~schema path) in
      let mentions_version =
        let found = ref false in
        for i = 0 to String.length msg - 2 do
          if String.sub msg i 2 = "99" then found := true
        done;
        !found
      in
      Alcotest.(check bool) "error message names the version" true mentions_version)

let schema_mismatch_detected () =
  with_saved (fun ~schema:_ ~path ->
      let other =
        Schema.create [ Schema.attr "key" Value.TInt; Schema.attr "hp" Value.TInt ]
      in
      let _ : string =
        must_corrupt ~msg:"schema mismatch" (fun () -> Checkpoint.load ~schema:other path)
      in
      ())

(* ------------------------------------------------------------------ *)
(* Journal framing *)

let entry ~tick ~digest =
  {
    Journal.j_tick = tick;
    j_units = 10;
    j_digest = digest;
    j_deaths = tick;
    j_resurrections = 0;
    j_structural = tick mod 2 = 0;
    j_dirty_attrs = [ 1; 3 ];
    j_dirty_keys = 5;
  }

let journal_roundtrip () =
  with_dir (fun dir ->
      let w = Journal.create ~dir ~base:4 ~fsync:false in
      Journal.append w (entry ~tick:5 ~digest:0xABCD);
      Journal.append w (entry ~tick:6 ~digest:0x1234);
      Alcotest.(check bool) "bytes accounted" true (Journal.bytes_written w > 0);
      Journal.close w;
      Journal.close w (* idempotent *);
      let entries, torn = Journal.read ~dir ~base:4 in
      Alcotest.(check bool) "not torn" false torn;
      Alcotest.(check int) "two records" 2 (List.length entries);
      let e = List.nth entries 1 in
      Alcotest.(check int) "tick" 6 e.Journal.j_tick;
      Alcotest.(check int) "digest" 0x1234 e.Journal.j_digest;
      Alcotest.(check (list int)) "dirty attrs" [ 1; 3 ] e.Journal.j_dirty_attrs;
      Alcotest.(check bool) "structural" true e.Journal.j_structural;
      Alcotest.(check (option int)) "file name round-trips its base" (Some 4)
        (Journal.base_of_filename (Filename.basename (Journal.path ~dir ~base:4))))

let journal_torn_tail () =
  with_dir (fun dir ->
      let w = Journal.create ~dir ~base:0 ~fsync:false in
      Journal.append w (entry ~tick:1 ~digest:1);
      Journal.append w (entry ~tick:2 ~digest:2);
      Journal.append w (entry ~tick:3 ~digest:3);
      Journal.close w;
      let path = Journal.path ~dir ~base:0 in
      let body = read_file path in
      (* rip a few bytes off the last record, as a crash mid-append would *)
      write_file path (String.sub body 0 (String.length body - 3));
      let entries, torn = Journal.read ~dir ~base:0 in
      Alcotest.(check bool) "torn" true torn;
      Alcotest.(check (list int)) "valid prefix survives" [ 1; 2 ]
        (List.map (fun e -> e.Journal.j_tick) entries);
      (* a flipped byte inside a record also tears there instead of loading *)
      write_file path body;
      flip_byte path ~at:(String.length body - 10);
      let entries, torn = Journal.read ~dir ~base:0 in
      Alcotest.(check bool) "flip torn" true torn;
      Alcotest.(check bool) "flip drops the damaged suffix" true (List.length entries < 3))

let journal_missing_and_bad_header () =
  with_dir (fun dir ->
      let entries, torn = Journal.read ~dir ~base:9 in
      Alcotest.(check bool) "missing file reads empty" true (entries = [] && not torn);
      let w = Journal.create ~dir ~base:9 ~fsync:false in
      Journal.append w (entry ~tick:10 ~digest:1);
      Journal.close w;
      (* damage the header: unlike a torn tail this must raise *)
      flip_byte (Journal.path ~dir ~base:9) ~at:3;
      let _ : string =
        must_corrupt ~msg:"journal header" (fun () -> Journal.read ~dir ~base:9)
      in
      ())

(* ------------------------------------------------------------------ *)
(* Generation fallback and pruning *)

let generation_fallback () =
  let schema = rich_schema () in
  with_dir (fun dir ->
      let save tick =
        ignore
          (Checkpoint.save ~dir ~fsync:false ~schema
             (mk_state ~tick [| sample_tuple ~key:tick |]))
      in
      save 10;
      save 20;
      save 30;
      Alcotest.(check (list int)) "generations newest first" [ 30; 20; 10 ]
        (Checkpoint.generations ~dir);
      flip_byte (Checkpoint.path ~dir ~tick:30) ~at:40;
      (match Checkpoint.load_latest ~schema ~dir with
      | Error e -> Alcotest.failf "fallback failed: %s" e
      | Ok (st, skipped) ->
        Alcotest.(check int) "fell back one generation" 1 skipped;
        Alcotest.(check int) "loaded tick 20" 20 st.Checkpoint.tick);
      flip_byte (Checkpoint.path ~dir ~tick:20) ~at:41;
      (match Checkpoint.load_latest ~schema ~dir with
      | Error _ -> Alcotest.fail "generation 10 should still load"
      | Ok (st, skipped) ->
        Alcotest.(check int) "fell back two generations" 2 skipped;
        Alcotest.(check int) "loaded tick 10" 10 st.Checkpoint.tick);
      flip_byte (Checkpoint.path ~dir ~tick:10) ~at:42;
      match Checkpoint.load_latest ~schema ~dir with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "every generation is corrupt; load must fail")

let prune_generations () =
  let schema = rich_schema () in
  with_dir (fun dir ->
      List.iter
        (fun tick ->
          ignore
            (Checkpoint.save ~dir ~fsync:false ~schema
               (mk_state ~tick [| sample_tuple ~key:tick |]));
          Journal.close (Journal.create ~dir ~base:tick ~fsync:false))
        [ 5; 10; 15; 20 ];
      Checkpoint.prune ~dir ~keep:2;
      Alcotest.(check (list int)) "newest two generations kept" [ 20; 15 ]
        (Checkpoint.generations ~dir);
      Alcotest.(check bool) "old journals pruned with their generations" true
        ((not (Sys.file_exists (Journal.path ~dir ~base:5)))
        && (not (Sys.file_exists (Journal.path ~dir ~base:10)))
        && Sys.file_exists (Journal.path ~dir ~base:15)))

(* ------------------------------------------------------------------ *)
(* Recovery differentials: restore-at-k + run-to-n = uninterrupted n *)

let battle_scenario () = Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 40) ()

(* One interruption shape applied between the "crash" and the restore. *)
type damage =
  | Clean (* the process died between appends: the journal tail is whole *)
  | Torn_journal (* died mid-append: bytes ripped off the newest journal *)
  | Corrupt_newest (* the newest checkpoint generation is bit-flipped *)

let damage_name = function
  | Clean -> "clean"
  | Torn_journal -> "torn journal"
  | Corrupt_newest -> "corrupt newest generation"

let apply_damage ~(dir : string) = function
  | Clean -> ()
  | Torn_journal ->
    let base = List.hd (Checkpoint.generations ~dir) in
    let path = Journal.path ~dir ~base in
    let body = read_file path in
    if String.length body > 24 then
      write_file path (String.sub body 0 (String.length body - 4))
  | Corrupt_newest ->
    let tick = List.hd (Checkpoint.generations ~dir) in
    flip_byte (Checkpoint.path ~dir ~tick) ~at:60

(* The tentpole determinism property.  An uninterrupted n-tick reference
   run; a "victim" run with persistence armed that is abandoned after k
   ticks (the journal writer is never closed — exactly what SIGKILL
   leaves); optional damage to the directory; then restore + run to n
   must be bit-identical to the reference, state and counters both. *)
let restore_differential ?fault_policy ?(damage = Clean) ?(every = 7) ~(k : int) ~(n : int)
    (evaluator : Simulation.evaluator_kind) : unit =
  let msg =
    Fmt.str "%s k=%d n=%d (%s)" (Simulation.evaluator_name evaluator) k n
      (damage_name damage)
  in
  with_dir @@ fun dir ->
  let sc = battle_scenario () in
  let cfg = Scenario.sim_config ~seed:13 sc in
  let reference = Simulation.create ?fault_policy cfg ~evaluator ~units:sc.Scenario.units in
  Simulation.run reference ~ticks:n;
  let victim = Simulation.create ?fault_policy cfg ~evaluator ~units:sc.Scenario.units in
  Simulation.checkpoint_every ~fsync:false victim ~dir ~every;
  Simulation.run victim ~ticks:k;
  (* abandoned here, writer still open — the crash *)
  apply_damage ~dir damage;
  match Simulation.restore ?fault_policy cfg ~evaluator ~dir with
  | Error e -> Alcotest.failf "%s: restore failed: %s" msg e
  | Ok (sim, info) ->
    (match damage with
    | Clean ->
      Alcotest.(check int) (msg ^ ": recovery reaches the crash tick") k
        (Simulation.tick_count sim)
    | Corrupt_newest ->
      Alcotest.(check int)
        (msg ^ ": fell back one generation")
        1 info.Simulation.generations_skipped;
      Alcotest.(check int) (msg ^ ": journal chain still reaches the crash tick") k
        (Simulation.tick_count sim)
    | Torn_journal ->
      (* the torn record is discarded; the tick it committed is re-run below *)
      Alcotest.(check bool) (msg ^ ": tear detected or nothing torn") true
        (info.Simulation.journal_torn || Simulation.tick_count sim = k));
    Alcotest.(check bool) (msg ^ ": restored at or before the crash tick") true
      (Simulation.tick_count sim <= k);
    Simulation.run sim ~ticks:(n - Simulation.tick_count sim);
    Test_parallel.check_states ~msg (Test_parallel.sorted_units reference)
      (Test_parallel.sorted_units sim);
    let a = Simulation.report reference and b = Simulation.report sim in
    Alcotest.(check int) (msg ^ ": deaths") a.Simulation.deaths b.Simulation.deaths;
    Alcotest.(check int)
      (msg ^ ": resurrections")
      a.Simulation.resurrections b.Simulation.resurrections

let clean_recovery_all_evaluators () =
  List.iter
    (fun evaluator -> restore_differential ~k:13 ~n:30 evaluator)
    [
      Simulation.Naive;
      Simulation.Indexed;
      Simulation.Parallel { domains = 3 };
      Simulation.Fused;
    ]

let torn_journal_recovery () =
  restore_differential ~damage:Torn_journal ~k:12 ~n:28 Simulation.Indexed

let corrupt_generation_recovery () =
  restore_differential ~damage:Corrupt_newest ~k:12 ~n:28 Simulation.Indexed;
  restore_differential ~damage:Corrupt_newest ~k:16 ~n:24 Simulation.Fused

(* Random crash points and checkpoint cadences, clean shape. *)
let recovery_fuzz =
  QCheck.Test.make ~count:8 ~name:"fuzz: random crash tick and cadence, indexed"
    QCheck.(pair (int_range 1 18) (int_range 1 9))
    (fun (k, every) ->
      restore_differential ~every ~k ~n:20 Simulation.Indexed;
      true)

(* A Degrade retry before the crash: the journaled ticks were committed
   by the demoted evaluator, and replay (healthy — no injection armed)
   must still reproduce them bit-for-bit, because the evaluators are
   pinned equal and so the digests match across the demotion. *)
let degrade_recovery () =
  with_injection @@ fun () ->
  with_dir @@ fun dir ->
  let sc = battle_scenario () in
  let cfg = Scenario.sim_config ~seed:13 sc in
  let a =
    Simulation.create ~fault_policy:Simulation.Degrade cfg ~evaluator:Simulation.Fused
      ~units:sc.Scenario.units
  in
  Simulation.checkpoint_every ~fsync:false a ~dir ~every:6;
  Simulation.run a ~ticks:8;
  Fault_inject.arm ~point:"fused.kernel" Fault_inject.Always;
  Simulation.step a (* tick 9 faults, demotes fused -> indexed, retries *);
  Fault_inject.reset ();
  Simulation.run a ~ticks:11 (* to tick 20, on the demoted evaluator *);
  Alcotest.(check bool) "a degradation was recorded" true (Simulation.degradations a <> []);
  match
    Simulation.restore ~fault_policy:Simulation.Degrade cfg ~evaluator:Simulation.Fused ~dir
  with
  | Error e -> Alcotest.failf "restore after degrade failed: %s" e
  | Ok (b, _info) ->
    Alcotest.(check int) "recovered to the crash tick" 20 (Simulation.tick_count b);
    Test_parallel.check_states ~msg:"degrade recovery" (Test_parallel.sorted_units a)
      (Test_parallel.sorted_units b);
    if compare (Simulation.degradations a) (Simulation.degradations b) <> 0 then
      Alcotest.fail "the demotion history did not survive recovery"

(* A quarantine taken before the checkpoint must survive restore: the
   excluded group stays excluded, so continuation stays bit-identical. *)
let quarantine_recovery () =
  with_injection @@ fun () ->
  with_dir @@ fun dir ->
  let sc = battle_scenario () in
  let cfg = Scenario.sim_config ~seed:13 sc in
  let a =
    Simulation.create ~fault_policy:Simulation.Quarantine_script cfg
      ~evaluator:Simulation.Indexed ~units:sc.Scenario.units
  in
  Simulation.checkpoint_every ~fsync:false a ~dir ~every:5;
  Fault_inject.arm ~point:"exec.group" (Fault_inject.At_count 2);
  Simulation.run a ~ticks:3;
  Fault_inject.reset ();
  Simulation.run a ~ticks:9 (* to tick 12; generations at 0, 5, 10 *);
  let quarantined = Simulation.quarantined_scripts a in
  Alcotest.(check bool) "a script group is quarantined" true (quarantined <> []);
  match
    Simulation.restore ~fault_policy:Simulation.Quarantine_script cfg
      ~evaluator:Simulation.Indexed ~dir
  with
  | Error e -> Alcotest.failf "restore after quarantine failed: %s" e
  | Ok (b, _info) ->
    Alcotest.(check int) "recovered to the crash tick" 12 (Simulation.tick_count b);
    Alcotest.(check (list string)) "quarantine set survives" quarantined
      (Simulation.quarantined_scripts b);
    Simulation.run a ~ticks:8;
    Simulation.run b ~ticks:8;
    Test_parallel.check_states ~msg:"quarantined continuation"
      (Test_parallel.sorted_units a) (Test_parallel.sorted_units b)

(* ------------------------------------------------------------------ *)
(* Fault injection on the I/O paths themselves *)

let sim_with_persistence ?(every = 0) (dir : string) =
  let sc = battle_scenario () in
  let cfg = Scenario.sim_config ~seed:13 sc in
  let sim = Simulation.create cfg ~evaluator:Simulation.Indexed ~units:sc.Scenario.units in
  Simulation.checkpoint_every ~fsync:false sim ~dir ~every;
  (sim, cfg)

let injected_journal_append () =
  with_injection @@ fun () ->
  with_dir @@ fun dir ->
  let sim, cfg = sim_with_persistence dir in
  Fault_inject.arm ~point:"io.journal.append" Fault_inject.Always;
  (match Simulation.step sim with
  | () -> Alcotest.fail "journal-append fault was swallowed"
  | exception Fault_inject.Injected { point; _ } ->
    Alcotest.(check string) "right point" "io.journal.append" point);
  Fault_inject.reset ();
  (* the unjournaled tick is lost, but the directory is still coherent:
     restore lands on the arming checkpoint *)
  match Simulation.restore cfg ~evaluator:Simulation.Indexed ~dir with
  | Error e -> Alcotest.failf "restore failed: %s" e
  | Ok (b, info) ->
    Alcotest.(check int) "restored the arming generation" 0 (Simulation.tick_count b);
    Alcotest.(check int) "nothing replayed" 0 info.Simulation.replayed

let injected_checkpoint_write () =
  with_injection @@ fun () ->
  with_dir @@ fun dir ->
  let sim, cfg = sim_with_persistence dir in
  Simulation.run sim ~ticks:5;
  Fault_inject.arm ~point:"io.checkpoint.write" Fault_inject.Always;
  (match Simulation.checkpoint_now sim with
  | () -> Alcotest.fail "checkpoint-write fault was swallowed"
  | exception Fault_inject.Injected { point; _ } ->
    Alcotest.(check string) "right point" "io.checkpoint.write" point);
  Fault_inject.reset ();
  (* the failed generation left the previous one and its journal intact,
     and journaling continues *)
  Simulation.run sim ~ticks:2;
  Alcotest.(check (list int)) "only the arming generation exists" [ 0 ]
    (Checkpoint.generations ~dir);
  match Simulation.restore cfg ~evaluator:Simulation.Indexed ~dir with
  | Error e -> Alcotest.failf "restore failed: %s" e
  | Ok (b, info) ->
    Alcotest.(check int) "full journal replay" 7 info.Simulation.replayed;
    Alcotest.(check int) "recovered to the crash tick" 7 (Simulation.tick_count b);
    Test_parallel.check_states ~msg:"recovery after failed checkpoint"
      (Test_parallel.sorted_units sim) (Test_parallel.sorted_units b)

let injected_restore_read () =
  with_injection @@ fun () ->
  with_dir @@ fun dir ->
  let sim, cfg = sim_with_persistence ~every:4 dir in
  Simulation.run sim ~ticks:9 (* generations 0, 4, 8; keep 2 -> 8, 4 *);
  Simulation.detach_persistence sim;
  Fault_inject.arm ~point:"io.restore.read" (Fault_inject.At_count 1);
  match Simulation.restore cfg ~evaluator:Simulation.Indexed ~dir with
  | Error e -> Alcotest.failf "restore failed: %s" e
  | Ok (b, info) ->
    Alcotest.(check int) "unreadable newest generation skipped" 1
      info.Simulation.generations_skipped;
    Alcotest.(check int) "recovered to the crash tick" 9 (Simulation.tick_count b);
    Test_parallel.check_states ~msg:"recovery past unreadable generation"
      (Test_parallel.sorted_units sim) (Test_parallel.sorted_units b)

let restore_errors () =
  with_dir @@ fun dir ->
  let sc = battle_scenario () in
  let cfg = Scenario.sim_config ~seed:13 sc in
  (* empty directory *)
  (match Simulation.restore cfg ~evaluator:Simulation.Indexed ~dir with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "restore from an empty directory must fail");
  (* seed mismatch: the replay would not be the run that was journaled *)
  let sim = Simulation.create cfg ~evaluator:Simulation.Indexed ~units:sc.Scenario.units in
  Simulation.checkpoint_every ~fsync:false sim ~dir ~every:0;
  Simulation.run sim ~ticks:3;
  Simulation.detach_persistence sim;
  match
    Simulation.restore (Scenario.sim_config ~seed:14 sc) ~evaluator:Simulation.Indexed ~dir
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "restore with a mismatched seed must fail"

(* ------------------------------------------------------------------ *)

let suite =
  [
    ( "persist.codec",
      [
        Alcotest.test_case "pinned round-trips (empty/single/dup-key/all types)" `Quick
          roundtrip_pinned;
        qtest roundtrip_prop;
        Alcotest.test_case "units_digest is content-faithful" `Quick units_digest;
      ] );
    ( "persist.corruption",
      [
        Alcotest.test_case "truncation at any prefix is detected" `Quick truncation_detected;
        Alcotest.test_case "a flipped bit fails its section CRC" `Quick flipped_bit_detected;
        Alcotest.test_case "unknown header version is rejected" `Quick
          unknown_version_detected;
        Alcotest.test_case "schema mismatch is rejected" `Quick schema_mismatch_detected;
      ] );
    ( "persist.journal",
      [
        Alcotest.test_case "append/read round-trip" `Quick journal_roundtrip;
        Alcotest.test_case "torn tail returns the valid prefix" `Quick journal_torn_tail;
        Alcotest.test_case "missing file reads empty; bad header raises" `Quick
          journal_missing_and_bad_header;
      ] );
    ( "persist.generations",
      [
        Alcotest.test_case "load_latest falls back past corrupt generations" `Quick
          generation_fallback;
        Alcotest.test_case "prune keeps the newest K with their journals" `Quick
          prune_generations;
      ] );
    ( "persist.recovery",
      [
        Alcotest.test_case "restore-at-k = uninterrupted (naive/indexed/parallel/fused)"
          `Slow clean_recovery_all_evaluators;
        Alcotest.test_case "torn journal tail: recovery discards and re-runs" `Quick
          torn_journal_recovery;
        Alcotest.test_case "corrupt newest generation: fallback + chain replay" `Slow
          corrupt_generation_recovery;
        qtest recovery_fuzz;
        Alcotest.test_case "degrade retry before the crash replays bit-identically" `Quick
          degrade_recovery;
        Alcotest.test_case "quarantine set survives restore" `Quick quarantine_recovery;
      ] );
    ( "persist.faults",
      [
        Alcotest.test_case "io.journal.append propagates; directory stays coherent" `Quick
          injected_journal_append;
        Alcotest.test_case "io.checkpoint.write leaves the old generation usable" `Quick
          injected_checkpoint_write;
        Alcotest.test_case "io.restore.read falls back a generation" `Quick
          injected_restore_read;
        Alcotest.test_case "empty directory and seed mismatch are errors" `Quick
          restore_errors;
      ] );
  ]
