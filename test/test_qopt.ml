(* Tests for the optimizer layer: strategy classification, plan rewriting,
   and — the core correctness property of the whole system — exact
   agreement between the reference interpreter, the naive set-at-a-time
   executor and the fully indexed executor. *)

open Sgl_relalg
open Sgl_lang
open Sgl_qopt
open Sgl_util

let schema () = Test_lang.schema ()

(* ------------------------------------------------------------------ *)
(* Agg_plan classification *)

let box_pred range_expr =
  let open Expr in
  [
    Cmp (Ge, EAttr 2, Binop (Sub, UAttr 2, range_expr));
    Cmp (Le, EAttr 2, Binop (Add, UAttr 2, range_expr));
    Cmp (Ge, EAttr 3, Binop (Sub, UAttr 3, range_expr));
    Cmp (Le, EAttr 3, Binop (Add, UAttr 3, range_expr));
    Cmp (Ne, EAttr 1, UAttr 1);
  ]

let test_plan_divisible_cascade () =
  let agg =
    Aggregate.make ~name:"count" ~kinds:[ Aggregate.Count ]
      ~where_:(box_pred (Expr.Const (Value.Float 5.))) ()
  in
  match Agg_plan.analyze (schema ()) agg with
  | Agg_plan.Indexed { access; components; sweep; enumerate; _ } ->
    Alcotest.(check int) "2 box dims" 2 (List.length access.Agg_plan.boxes);
    Alcotest.(check int) "1 cat ne" 1 (List.length access.Agg_plan.cat_nes);
    Alcotest.(check bool) "no sweep for divisible" true (sweep = None);
    Alcotest.(check bool) "not enumerating" false enumerate;
    (match components with
    | [ Agg_plan.C_divisible _ ] -> ()
    | _ -> Alcotest.fail "expected one divisible component")
  | other -> Alcotest.failf "expected Indexed, got %s" (Agg_plan.strategy_name other)

let test_plan_uniform () =
  let agg =
    Aggregate.make ~name:"stddev_all" ~kinds:[ Aggregate.Std_dev (Expr.EAttr 2) ]
      ~where_:Predicate.always_true ()
  in
  Alcotest.(check string) "uniform" "uniform"
    (Agg_plan.strategy_name (Agg_plan.analyze (schema ()) agg))

let test_plan_sweep () =
  let agg =
    Aggregate.make ~name:"weakest"
      ~kinds:[ Aggregate.Arg_min { objective = Expr.EAttr 4; result = Expr.EAttr 0 } ]
      ~where_:(box_pred (Expr.Const (Value.Float 5.)))
      ~default:(Expr.Const (Value.Int (-1)))
      ()
  in
  match Agg_plan.analyze (schema ()) agg with
  | Agg_plan.Indexed { sweep = Some info; _ } ->
    Alcotest.(check (float 0.)) "rx" 5. info.Agg_plan.rx;
    Alcotest.(check int) "x center" 2 info.Agg_plan.x_center
  | other -> Alcotest.failf "expected sweep, got %s" (Agg_plan.strategy_name other)

let test_plan_sweep_requires_constant_range () =
  (* range = u.range is not constant: must fall back to enumeration. *)
  let agg =
    Aggregate.make ~name:"weakest_var"
      ~kinds:[ Aggregate.Min_agg (Expr.EAttr 4) ]
      ~where_:(box_pred (Expr.UAttr 5))
      ~default:(Expr.Const (Value.Int (-1)))
      ()
  in
  match Agg_plan.analyze (schema ()) agg with
  | Agg_plan.Indexed { sweep = None; _ } -> ()
  | other -> Alcotest.failf "expected no sweep, got %s" (Agg_plan.strategy_name other)

let test_plan_nearest () =
  let agg =
    Aggregate.make ~name:"nearest"
      ~kinds:
        [
          Aggregate.Nearest
            { ex = Expr.EAttr 2; ey = Expr.EAttr 3; ux = Expr.UAttr 2; uy = Expr.UAttr 3; result = Expr.EAttr 0 };
        ]
      ~where_:[ Expr.Cmp (Expr.Ne, Expr.EAttr 1, Expr.UAttr 1) ]
      ~default:(Expr.Const (Value.Int (-1)))
      ()
  in
  match Agg_plan.analyze (schema ()) agg with
  | Agg_plan.Indexed { components = [ Agg_plan.C_nearest _ ]; _ } -> ()
  | other -> Alcotest.failf "expected nearest, got %s" (Agg_plan.strategy_name other)

let test_plan_random_is_naive () =
  let agg =
    Aggregate.make ~name:"rand" ~kinds:[ Aggregate.Count ]
      ~where_:[ Expr.Cmp (Expr.Gt, Expr.Random (Expr.Const (Value.Int 1)), Expr.Const (Value.Int 0)) ]
      ()
  in
  Alcotest.(check string) "naive" "naive"
    (Agg_plan.strategy_name (Agg_plan.analyze (schema ()) agg))

let test_plan_canonicalize () =
  (* u.posx - 5 <= e.posx is a lower bound after canonicalization. *)
  let c =
    Agg_plan.canonicalize_conjunct
      (Expr.Cmp
         ( Expr.Le,
           Expr.Binop (Expr.Sub, Expr.UAttr 2, Expr.Const (Value.Float 5.)),
           Expr.EAttr 2 ))
  in
  (match Predicate.classify_conjunct c with
  | Predicate.Lower (2, _) -> ()
  | _ -> Alcotest.failf "not canonicalized: %a" Expr.pp c);
  (* e.posx + 3 <= u.posx moves the offset across. *)
  let c2 =
    Agg_plan.canonicalize_conjunct
      (Expr.Cmp
         ( Expr.Le,
           Expr.Binop (Expr.Add, Expr.EAttr 2, Expr.Const (Value.Float 3.)),
           Expr.UAttr 2 ))
  in
  match Predicate.classify_conjunct c2 with
  | Predicate.Upper (2, _) -> ()
  | _ -> Alcotest.failf "offset not moved: %a" Expr.pp c2

(* ------------------------------------------------------------------ *)
(* Plan rewriting *)

let compile_plans src =
  let prog = Compile.compile ~schema:(schema ()) src in
  (prog, Exec.compile prog)

let test_rewrite_sinks_unused_agg () =
  (* Figure 6 (a) -> (b): the centroid aggregate is only needed when the
     unit flees, so it must sink into the then-branch. *)
  let prog = Compile.compile ~schema:(schema ()) Test_lang.figure3_source in
  let compiled = Exec.compile prog in
  let plan = Option.get (Exec.find_plan compiled "main") in
  (* After optimization the top of the plan binds only the count aggregate;
     the centroid bind lives under the first selection. *)
  (match plan with
  | Plan.Bind (_, Plan.Bind_agg 0, Plan.Select (_, Plan.Bind (_, Plan.Bind_agg 1, _), _)) -> ()
  | other -> Alcotest.failf "centroid did not sink:@.%a" Plan.pp other);
  Alcotest.(check bool) "some binds sank" true (compiled.Exec.rewrites.Rewrite.sunk > 0)

let test_rewrite_drops_dead_bind () =
  let _, compiled =
    compile_plans "script main(u) { let dead = u.posx + 1.0; skip; }"
  in
  let plan = Option.get (Exec.find_plan compiled "main") in
  Alcotest.(check bool) "dead bind dropped" true (plan = Plan.Nop)

let test_rewrite_prunes_constants () =
  let _, compiled =
    compile_plans
      "action A(u) { on self { damage <- 1; } } script main(u) { if true then { perform A(u); } \
       else { skip; } }"
  in
  let plan = Option.get (Exec.find_plan compiled "main") in
  match plan with
  | Plan.Act _ -> ()
  | other -> Alcotest.failf "constant selection not pruned:@.%a" Plan.pp other

let test_rewrite_preserves_guarding_condition () =
  (* A bind read by the selection condition itself must not sink. *)
  let _, compiled =
    compile_plans
      {|
aggregate C(u) { count(*) where e.player <> u.player }
action A(u) { on self { damage <- 1; } }
script main(u) { let c = C(u); if c > 0 then { perform A(u); } }
|}
  in
  let plan = Option.get (Exec.find_plan compiled "main") in
  match plan with
  | Plan.Bind (_, Plan.Bind_agg _, Plan.Select _) -> ()
  | other -> Alcotest.failf "bind wrongly moved:@.%a" Plan.pp other

(* ------------------------------------------------------------------ *)
(* Equivalence: reference interpreter = naive exec = indexed exec *)

(* Random armies on an integer lattice, so float sums are exact and the
   equality can be bitwise. *)
let random_units s ~n ~seed =
  let prng = Prng.create seed in
  Array.init n (fun i ->
      Test_lang.mk_unit s ~key:i
        ~player:(Prng.int prng ~bound:2 [ i; 1 ])
        ~x:(float_of_int (Prng.int prng ~bound:40 [ i; 2 ]))
        ~y:(float_of_int (Prng.int prng ~bound:40 [ i; 3 ]))
        ~health:(20 + Prng.int prng ~bound:80 [ i; 4 ])
        ~range:(float_of_int (3 + Prng.int prng ~bound:3 [ i; 5 ]))
        ~morale:(Prng.int prng ~bound:4 [ i; 6 ])
        ~cooldown:(Prng.int prng ~bound:2 [ i; 7 ]))

(* Neutral-vs-zero normalization: the reference path materializes untouched
   effect attributes as initialized zeros, the accumulator as combination
   neutrals; both mean "no contribution".  Folding the initialized zero into
   each makes them comparable (and matches what post-processing computes). *)
let normalize_effects s (r : Relation.t) : Relation.t =
  Relation.map_rows
    (fun row ->
      let out = Tuple.copy row in
      List.iter
        (fun i ->
          let zero = Value.zero_of (Schema.ty_at s i) in
          Tuple.set out i (Schema.combine_values s i zero (Tuple.get out i)))
        (Schema.effect_indices s);
      out)
    r

let effects_reference prog script_name units rand_for =
  let script = Option.get (Core_ir.find_script prog script_name) in
  Combine.combine (Interp.run_script ~prog ~script ~units ~rand_for)

let effects_exec ~optimize ~evaluator prog script_name units rand_for_key =
  let compiled = Exec.compile ~optimize prog in
  let groups =
    [ { Exec.script = script_name; members = Array.init (Array.length units) (fun i -> i) } ]
  in
  let acc = Exec.run_tick compiled ~evaluator ~units ~groups ~rand_for:rand_for_key in
  Combine.Acc.to_relation acc

let check_equivalence ?(src = Test_lang.figure3_source) ~script ~n ~seed () =
  let s = schema () in
  let prog = Compile.compile ~schema:s src in
  let units = random_units s ~n ~seed in
  let prng = Prng.create (seed * 7919) in
  let rand_for_key ~key i = Prng.script_random prng ~tick:0 ~key i in
  let rand_for u i = rand_for_key ~key:(Tuple.key s u) i in
  let reference = normalize_effects s (effects_reference prog script units rand_for) in
  let naive_eval = Eval.naive ~schema:s ~aggregates:prog.Core_ir.aggregates in
  let indexed_eval = Eval.indexed ~schema:s ~aggregates:prog.Core_ir.aggregates () in
  let naive =
    normalize_effects s (effects_exec ~optimize:false ~evaluator:naive_eval prog script units rand_for_key)
  in
  let indexed =
    normalize_effects s (effects_exec ~optimize:true ~evaluator:indexed_eval prog script units rand_for_key)
  in
  if not (Relation.equal_as_multiset reference naive) then
    Alcotest.failf "naive exec diverged from reference@.ref:@.%a@.naive:@.%a" Relation.pp reference
      Relation.pp naive;
  if not (Relation.equal_as_multiset reference indexed) then
    Alcotest.failf "indexed exec diverged from reference@.ref:@.%a@.indexed:@.%a" Relation.pp
      reference Relation.pp indexed

let test_equiv_figure3_small () = check_equivalence ~script:"main" ~n:12 ~seed:1 ()
let test_equiv_figure3_medium () = check_equivalence ~script:"main" ~n:120 ~seed:2 ()
let test_equiv_figure3_tiny () = check_equivalence ~script:"main" ~n:1 ~seed:3 ()
let test_equiv_figure3_empty () = check_equivalence ~script:"main" ~n:0 ~seed:4 ()

let aoe_source =
  {|
const HEAL_AURA = 5;
aggregate WoundedAlliesNearby(u) {
  count(*)
  where e.player = u.player
    and e.posx >= u.posx - 6.0 and e.posx <= u.posx + 6.0
    and e.posy >= u.posy - 6.0 and e.posy <= u.posy + 6.0
    and e.health < 60
}
action Heal(u) {
  on all(u.player = e.player
         and e.posx >= u.posx - 4.0 and e.posx <= u.posx + 4.0
         and e.posy >= u.posy - 4.0 and e.posy <= u.posy + 4.0) {
    inaura <- HEAL_AURA;
  }
}
action Mortar(u) {
  on all(e.player <> u.player
         and e.posx >= u.posx - 3.0 and e.posx <= u.posx + 3.0
         and e.posy >= u.posy - 3.0 and e.posy <= u.posy + 3.0) {
    damage <- 7;
  }
}
script main(u) {
  let w = WoundedAlliesNearby(u);
  if w > 0 then { perform Heal(u); }
  else { perform Mortar(u); }
}
|}

let test_equiv_aoe () = check_equivalence ~src:aoe_source ~script:"main" ~n:80 ~seed:5 ()

let sweep_source =
  {|
aggregate WeakestEnemyInRange(u) {
  argmin(e.health; e.key)
  where e.player <> u.player
    and e.posx >= u.posx - 8.0 and e.posx <= u.posx + 8.0
    and e.posy >= u.posy - 8.0 and e.posy <= u.posy + 8.0
  default -1
}
action Strike(u, k) { on key(k) { damage <- 3; } }
script main(u) {
  let t = WeakestEnemyInRange(u);
  if t >= 0 then { perform Strike(u, t); }
}
|}

let test_equiv_sweep () = check_equivalence ~src:sweep_source ~script:"main" ~n:90 ~seed:6 ()

let uniform_source =
  {|
aggregate ArmySpreadX(u) { stddev(e.posx) where e.player = 0 default 0.0 }
action Rally(u) { on self { movevect_x <- 1; } }
script main(u) {
  let s = ArmySpreadX(u);
  if s > 5.0 then { perform Rally(u); }
}
|}

let test_equiv_uniform () = check_equivalence ~src:uniform_source ~script:"main" ~n:70 ~seed:7 ()

let enum_source =
  {|
# probe residual: the health comparison depends on u, forcing enumeration
aggregate TougherEnemiesNear(u) {
  count(*)
  where e.player <> u.player
    and e.posx >= u.posx - 6.0 and e.posx <= u.posx + 6.0
    and e.posy >= u.posy - 6.0 and e.posy <= u.posy + 6.0
    and e.health > u.health
}
action Flee(u) { on self { movevect_x <- 2; } }
script main(u) {
  let c = TougherEnemiesNear(u);
  if c > 0 then { perform Flee(u); }
}
|}

let test_equiv_enum () = check_equivalence ~src:enum_source ~script:"main" ~n:70 ~seed:8 ()

(* index-group sharing must not change any result *)
let test_share_equivalence () =
  let s = schema () in
  let prog = Compile.compile ~schema:s Test_lang.figure3_source in
  let units = random_units s ~n:90 ~seed:11 in
  let prng = Prng.create 77 in
  let rand_for_key ~key i = Prng.script_random prng ~tick:0 ~key i in
  let run share =
    let ev = Eval.indexed ~share ~schema:s ~aggregates:prog.Core_ir.aggregates () in
    normalize_effects s (effects_exec ~optimize:true ~evaluator:ev prog "main" units rand_for_key)
  in
  Alcotest.(check bool) "shared = private" true
    (Relation.equal_as_multiset (run true) (run false))

let equivalence_property =
  QCheck.Test.make ~name:"figure3 equivalence on random armies" ~count:25
    QCheck.(pair (int_range 0 60) small_int)
    (fun (n, seed) ->
      check_equivalence ~script:"main" ~n ~seed:(seed + 100) ();
      true)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "qopt.agg_plan",
      [
        tc "divisible box -> cascade" `Quick test_plan_divisible_cascade;
        tc "global aggregate -> uniform" `Quick test_plan_uniform;
        tc "constant-range min -> sweep" `Quick test_plan_sweep;
        tc "variable-range min -> enumerate" `Quick test_plan_sweep_requires_constant_range;
        tc "nearest -> kd" `Quick test_plan_nearest;
        tc "random -> naive" `Quick test_plan_random_is_naive;
        tc "conjunct canonicalization" `Quick test_plan_canonicalize;
      ] );
    ( "qopt.rewrite",
      [
        tc "figure 6: centroid sinks into branch" `Quick test_rewrite_sinks_unused_agg;
        tc "dead bind dropped" `Quick test_rewrite_drops_dead_bind;
        tc "constant selection pruned" `Quick test_rewrite_prunes_constants;
        tc "guarding bind preserved" `Quick test_rewrite_preserves_guarding_condition;
      ] );
    ( "qopt.equivalence",
      [
        tc "figure 3, 12 units" `Quick test_equiv_figure3_small;
        tc "figure 3, 120 units" `Quick test_equiv_figure3_medium;
        tc "single unit" `Quick test_equiv_figure3_tiny;
        tc "empty battlefield" `Quick test_equiv_figure3_empty;
        tc "area effects (heal + mortar)" `Quick test_equiv_aoe;
        tc "sweep-line argmin" `Quick test_equiv_sweep;
        tc "uniform stddev" `Quick test_equiv_uniform;
        tc "enumeration residual" `Quick test_equiv_enum;
        tc "index-group sharing equivalence" `Quick test_share_equivalence;
        QCheck_alcotest.to_alcotest equivalence_property;
      ] );
  ]
