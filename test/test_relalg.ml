(* Tests for the relational substrate: values, schemas, tuples, predicates,
   aggregates, the combination operator (+) and its algebraic laws. *)

open Sgl_relalg

let qtest = QCheck_alcotest.to_alcotest
let no_rand _ = 0
let v_int i = Value.Int i
let v_float f = Value.Float f
let value_t = Alcotest.testable Value.pp Value.equal

(* ------------------------------------------------------------------ *)
(* Value *)

let test_value_arith () =
  Alcotest.check value_t "int add" (v_int 5) (Value.add (v_int 2) (v_int 3));
  Alcotest.check value_t "mixed add widens" (v_float 5.5) (Value.add (v_int 2) (v_float 3.5));
  Alcotest.check value_t "vec scale"
    (Value.make_vec (v_float 4.) (v_float 6.))
    (Value.mul (v_int 2) (Value.make_vec (v_int 2) (v_int 3)));
  Alcotest.check value_t "mod positive" (v_int 1) (Value.modulo (v_int (-3)) (v_int 2));
  Alcotest.check value_t "neg vec"
    (Value.make_vec (v_float (-1.)) (v_float 2.))
    (Value.neg (Value.make_vec (v_int 1) (v_int (-2))))

let test_value_errors () =
  let raises f = try ignore (f ()); false with Value.Type_error _ -> true in
  Alcotest.(check bool) "bool add" true (raises (fun () -> Value.add (Value.Bool true) (v_int 1)));
  Alcotest.(check bool) "div by zero" true (raises (fun () -> Value.div (v_int 1) (v_int 0)));
  Alcotest.(check bool) "vec compare" true
    (raises (fun () -> Value.compare_num (Value.make_vec (v_int 0) (v_int 0)) (v_int 1)));
  Alcotest.(check bool) "vec_x of int" true (raises (fun () -> Value.vec_x (v_int 3)))

let test_value_equal_widening () =
  Alcotest.(check bool) "2 = 2.0" true (Value.equal (v_int 2) (v_float 2.));
  Alcotest.(check bool) "2 <> 2.5" false (Value.equal (v_int 2) (v_float 2.5));
  Alcotest.(check bool) "bool <> int" false (Value.equal (Value.Bool true) (v_int 1))

(* ------------------------------------------------------------------ *)
(* Schema / Tuple *)

let battle_schema () =
  Schema.create
    [
      Schema.attr "key" Value.TInt;
      Schema.attr "player" Value.TInt;
      Schema.attr "posx" Value.TFloat;
      Schema.attr "posy" Value.TFloat;
      Schema.attr "health" Value.TInt;
      Schema.attr ~tag:Schema.Sum "damage" Value.TFloat;
      Schema.attr ~tag:Schema.Max "inaura" Value.TFloat;
      Schema.attr ~tag:Schema.Min "slow" Value.TFloat;
    ]

let test_schema_basics () =
  let s = battle_schema () in
  Alcotest.(check int) "arity" 8 (Schema.arity s);
  Alcotest.(check int) "key index" 0 (Schema.key_index s);
  Alcotest.(check int) "find" 4 (Schema.find s "health");
  Alcotest.(check bool) "mem" false (Schema.mem s "mana");
  Alcotest.(check (list int)) "effects" [ 5; 6; 7 ] (Schema.effect_indices s);
  Alcotest.(check (list int)) "consts" [ 0; 1; 2; 3; 4 ] (Schema.const_indices s)

let test_schema_rejections () =
  let raises mk = try ignore (mk ()); false with Schema.Schema_error _ -> true in
  Alcotest.(check bool) "no key" true
    (raises (fun () -> Schema.create [ Schema.attr "posx" Value.TFloat ]));
  Alcotest.(check bool) "float key" true
    (raises (fun () -> Schema.create [ Schema.attr "key" Value.TFloat ]));
  Alcotest.(check bool) "effect key" true
    (raises (fun () -> Schema.create [ Schema.attr ~tag:Schema.Sum "key" Value.TInt ]));
  Alcotest.(check bool) "duplicate" true
    (raises (fun () ->
         Schema.create [ Schema.attr "key" Value.TInt; Schema.attr "key" Value.TInt ]))

let test_schema_neutrals () =
  let s = battle_schema () in
  Alcotest.check value_t "sum neutral" (v_float 0.) (Schema.neutral_of s (Schema.find s "damage"));
  Alcotest.check value_t "max neutral" (v_float neg_infinity)
    (Schema.neutral_of s (Schema.find s "inaura"));
  Alcotest.check value_t "min neutral" (v_float infinity)
    (Schema.neutral_of s (Schema.find s "slow"))

let test_tuple_of_list () =
  let s = battle_schema () in
  let t =
    Tuple.of_list s
      [ v_int 1; v_int 0; v_int 3; v_float 4.; v_int 100; v_float 0.; v_float 0.; v_float 0. ]
  in
  Alcotest.check value_t "int widened to float" (v_float 3.) (Tuple.get t 2);
  Alcotest.(check int) "key" 1 (Tuple.key s t);
  let raises mk = try ignore (mk ()); false with Schema.Schema_error _ -> true in
  Alcotest.(check bool) "arity" true (raises (fun () -> Tuple.of_list s [ v_int 1 ]));
  Alcotest.(check bool) "type" true
    (raises (fun () ->
         Tuple.of_list s
           [ v_float 1.; v_int 0; v_int 3; v_float 4.; v_int 100; v_float 0.; v_float 0.; v_float 0. ]))

let test_tuple_extend_restrict () =
  let s = battle_schema () in
  let t = Tuple.create s in
  let t' = Tuple.extend t (v_int 42) in
  Alcotest.(check int) "extended arity" 9 (Tuple.arity t');
  Alcotest.check value_t "slot" (v_int 42) (Tuple.get t' 8);
  Alcotest.(check int) "restricted" 8 (Tuple.arity (Tuple.restrict s t'))

(* ------------------------------------------------------------------ *)
(* Expr *)

let test_expr_eval () =
  let u = [| v_int 7; v_float 2.5 |] in
  let e = [| v_int 1; v_float 10. |] in
  let ctx = { Expr.u; e = Some e; rand = (fun i -> i * 2) } in
  let open Expr in
  Alcotest.check value_t "arith" (v_float 12.5)
    (eval ctx (Binop (Add, UAttr 1, EAttr 1)));
  Alcotest.check value_t "cmp" (Value.Bool true) (eval ctx (Cmp (Lt, UAttr 1, EAttr 1)));
  Alcotest.check value_t "random" (v_int 6) (eval ctx (Random (Const (v_int 3))));
  Alcotest.check value_t "minmax" (v_float 2.5) (eval ctx (MinOf (UAttr 1, EAttr 1)));
  Alcotest.check value_t "vec" (v_float 3.)
    (eval ctx (VecX (VecOf (Const (v_int 3), Const (v_int 4)))));
  Alcotest.(check bool) "e missing" true
    (try ignore (eval { ctx with e = None } (EAttr 0)); false with Expr.Eval_error _ -> true)

let test_expr_analysis () =
  let open Expr in
  let e1 = Binop (Add, UAttr 3, EAttr 1) in
  Alcotest.(check bool) "mentions e" true (mentions_e e1);
  Alcotest.(check bool) "mentions u" true (mentions_u e1);
  Alcotest.(check bool) "no random" false (mentions_random e1);
  Alcotest.(check bool) "random found" true (mentions_random (Not (Random (Const (v_int 0)))));
  Alcotest.(check (list int)) "slots" [ 1; 3 ]
    (u_slots (Binop (Mul, UAttr 3, Binop (Add, UAttr 1, UAttr 3))))

(* ------------------------------------------------------------------ *)
(* Predicate classification *)

let test_predicate_classify () =
  let open Expr in
  (* e.posx >= u.posx - 5 and e.posx <= u.posx + 5 and e.player <> u.player
     and e.health < 50 and sqrt(e.posx) > u.posy *)
  let p =
    [
      Cmp (Ge, EAttr 2, Binop (Sub, UAttr 2, Const (v_float 5.)));
      Cmp (Le, EAttr 2, Binop (Add, UAttr 2, Const (v_float 5.)));
      Cmp (Ne, EAttr 1, UAttr 1);
      Cmp (Lt, EAttr 4, Const (v_int 50));
      Cmp (Gt, Sqrt (EAttr 2), UAttr 3);
    ]
  in
  let cls = Predicate.classify p in
  Alcotest.(check int) "one ne" 1 (List.length cls.Predicate.cat_nes);
  Alcotest.(check int) "one lower" 1 (List.length cls.Predicate.lowers);
  Alcotest.(check int) "two uppers" 2 (List.length cls.Predicate.uppers);
  Alcotest.(check int) "one residual" 1 (List.length cls.Predicate.residuals);
  Alcotest.(check (list int)) "range attrs" [ 2; 4 ] (Predicate.range_attrs cls)

let test_predicate_flip () =
  let open Expr in
  (* 3 <= e.posx is a lower bound on e.posx *)
  let cls = Predicate.classify [ Cmp (Le, Const (v_float 3.), EAttr 2) ] in
  (match cls.Predicate.lowers with
  | [ (2, b) ] -> Alcotest.(check bool) "inclusive" true b.Predicate.inclusive
  | _ -> Alcotest.fail "expected one lower bound");
  (* u.posx = e.player is categorical equality *)
  let cls2 = Predicate.classify [ Cmp (Eq, UAttr 2, EAttr 1) ] in
  Alcotest.(check int) "eq" 1 (List.length cls2.Predicate.cat_eqs)

let test_predicate_of_expr () =
  let open Expr in
  let e = And (And (Const (Value.Bool true), Cmp (Lt, UAttr 0, Const (v_int 3))), Cmp (Gt, UAttr 0, Const (v_int 1))) in
  Alcotest.(check int) "flattened" 2 (List.length (Predicate.of_expr e))

(* ------------------------------------------------------------------ *)
(* Aggregates (naive reference) *)

let units_fixture schema =
  (* key player posx posy health damage inaura slow *)
  let mk k p x y h =
    Tuple.of_list schema
      [ v_int k; v_int p; v_float x; v_float y; v_int h; v_float 0.; v_float 0.; v_float 0. ]
  in
  [| mk 0 0 0. 0. 100; mk 1 0 2. 1. 80; mk 2 1 1. 1. 60; mk 3 1 5. 5. 40; mk 4 1 (-3.) 0. 20 |]

let enemy_in_box_pred range =
  let open Expr in
  [
    Cmp (Ge, EAttr 2, Binop (Sub, UAttr 2, Const (v_float range)));
    Cmp (Le, EAttr 2, Binop (Add, UAttr 2, Const (v_float range)));
    Cmp (Ge, EAttr 3, Binop (Sub, UAttr 3, Const (v_float range)));
    Cmp (Le, EAttr 3, Binop (Add, UAttr 3, Const (v_float range)));
    Cmp (Ne, EAttr 1, UAttr 1);
  ]

let test_aggregate_count_sum () =
  let s = battle_schema () in
  let units = units_fixture s in
  let ctx = { Expr.u = units.(0); e = None; rand = no_rand } in
  let count =
    Aggregate.make ~name:"count_enemies" ~kinds:[ Aggregate.Count ]
      ~where_:(enemy_in_box_pred 2.) ()
  in
  Alcotest.check value_t "count" (v_int 1) (Aggregate.eval_naive ~units ~ctx count);
  let sum =
    Aggregate.make ~name:"sum_health" ~kinds:[ Aggregate.Sum (Expr.EAttr 4) ]
      ~where_:(enemy_in_box_pred 10.) ()
  in
  Alcotest.check value_t "sum" (v_float 120.) (Aggregate.eval_naive ~units ~ctx sum)

let test_aggregate_centroid_and_default () =
  let s = battle_schema () in
  let units = units_fixture s in
  let ctx = { Expr.u = units.(0); e = None; rand = no_rand } in
  let centroid =
    Aggregate.make ~name:"centroid"
      ~kinds:[ Aggregate.Avg (Expr.EAttr 2); Aggregate.Avg (Expr.EAttr 3) ]
      ~where_:(enemy_in_box_pred 100.)
      ~default:(Expr.VecOf (Expr.UAttr 2, Expr.UAttr 3))
      ()
  in
  Alcotest.check value_t "centroid" (Value.make_vec (v_float 1.) (v_float 2.))
    (Aggregate.eval_naive ~units ~ctx centroid);
  (* Empty selection: same query from an isolated unit far away. *)
  let far =
    Tuple.of_list s
      [ v_int 9; v_int 0; v_float 1000.; v_float 1000.; v_int 1; v_float 0.; v_float 0.; v_float 0. ]
  in
  let ctx_far = { Expr.u = far; e = None; rand = no_rand } in
  let centroid_near =
    Aggregate.make ~name:"centroid2"
      ~kinds:[ Aggregate.Avg (Expr.EAttr 2); Aggregate.Avg (Expr.EAttr 3) ]
      ~where_:(enemy_in_box_pred 2.)
      ~default:(Expr.VecOf (Expr.UAttr 2, Expr.UAttr 3))
      ()
  in
  Alcotest.check value_t "default used" (Value.make_vec (v_float 1000.) (v_float 1000.))
    (Aggregate.eval_naive ~units ~ctx:ctx_far centroid_near)

let test_aggregate_argmin_nearest () =
  let s = battle_schema () in
  let units = units_fixture s in
  let ctx = { Expr.u = units.(0); e = None; rand = no_rand } in
  let weakest =
    Aggregate.make ~name:"weakest"
      ~kinds:[ Aggregate.Arg_min { objective = Expr.EAttr 4; result = Expr.EAttr 0 } ]
      ~where_:(enemy_in_box_pred 100.) ()
  in
  Alcotest.check value_t "weakest key" (v_int 4) (Aggregate.eval_naive ~units ~ctx weakest);
  let nearest =
    Aggregate.make ~name:"nearest"
      ~kinds:
        [
          Aggregate.Nearest
            { ex = Expr.EAttr 2; ey = Expr.EAttr 3; ux = Expr.UAttr 2; uy = Expr.UAttr 3; result = Expr.EAttr 0 };
        ]
      ~where_:(enemy_in_box_pred 100.) ()
  in
  Alcotest.check value_t "nearest key" (v_int 2) (Aggregate.eval_naive ~units ~ctx nearest)

let test_aggregate_stddev () =
  let s = battle_schema () in
  let units = units_fixture s in
  let ctx = { Expr.u = units.(0); e = None; rand = no_rand } in
  let agg =
    Aggregate.make ~name:"stddev_h" ~kinds:[ Aggregate.Std_dev (Expr.EAttr 4) ]
      ~where_:Predicate.always_true ()
  in
  (* health values: 100 80 60 40 20 -> population stddev = sqrt(800) *)
  (match Aggregate.eval_naive ~units ~ctx agg with
  | Value.Float f -> Alcotest.(check (float 1e-9)) "stddev" (sqrt 800.) f
  | v -> Alcotest.failf "expected float, got %a" Value.pp v);
  (* Divisible finisher agrees. *)
  let stats = Aggregate.stats_of_kind (Aggregate.Std_dev (Expr.EAttr 4)) in
  Alcotest.(check int) "3 stats" 3 (List.length stats)

let test_aggregate_empty_no_default () =
  let s = battle_schema () in
  let units = units_fixture s in
  let ctx = { Expr.u = units.(0); e = None; rand = no_rand } in
  let agg =
    Aggregate.make ~name:"min_none" ~kinds:[ Aggregate.Min_agg (Expr.EAttr 4) ]
      ~where_:[ Expr.Const (Value.Bool false) ] ()
  in
  Alcotest.(check bool) "raises" true
    (try ignore (Aggregate.eval_naive ~units ~ctx agg); false
     with Aggregate.Aggregate_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Combine: unit tests and laws *)

let effect_row s k damage inaura slow =
  Tuple.of_list s
    [ v_int k; v_int 0; v_float 0.; v_float 0.; v_int 1; v_float damage; v_float inaura; v_float slow ]

let test_combine_folds_by_tag () =
  let s = battle_schema () in
  let r =
    Relation.of_tuples s
      [ effect_row s 1 5. 2. 0.5; effect_row s 1 3. 7. 0.25; effect_row s 2 1. 1. 1. ]
  in
  let c = Combine.combine r in
  Alcotest.(check int) "two groups" 2 (Relation.cardinality c);
  let row1 = List.find (fun t -> Tuple.key s t = 1) (Relation.to_list c) in
  Alcotest.check value_t "damage summed" (v_float 8.) (Tuple.get row1 5);
  Alcotest.check value_t "aura maxed" (v_float 7.) (Tuple.get row1 6);
  Alcotest.check value_t "slow minned" (v_float 0.25) (Tuple.get row1 7)

(* Random effect relations over a fixed key universe. *)
let effect_relation_gen s =
  QCheck.Gen.(
    map
      (fun rows ->
        Relation.of_tuples s
          (List.map
             (fun (k, d, a, sl) ->
               effect_row s (abs k mod 5) (float_of_int d) (float_of_int a) (float_of_int sl))
             rows))
      (list_size (int_range 0 25) (tup4 small_int (int_range (-20) 20) (int_range (-20) 20) (int_range (-20) 20))))

let arb_rel s = QCheck.make (effect_relation_gen s)

let combine_idempotent =
  let s = battle_schema () in
  QCheck.Test.make ~name:"combine is idempotent: (+)((+)R) = (+)R" ~count:200 (arb_rel s)
    (fun r -> Relation.equal_as_multiset (Combine.combine (Combine.combine r)) (Combine.combine r))

let combine_commutative =
  let s = battle_schema () in
  QCheck.Test.make ~name:"combine is commutative: R (+) S = S (+) R" ~count:200
    (QCheck.pair (arb_rel s) (arb_rel s))
    (fun (r, sr) ->
      Relation.equal_as_multiset (Combine.union_combine r sr) (Combine.union_combine sr r))

let combine_associative =
  let s = battle_schema () in
  QCheck.Test.make ~name:"combine is associative" ~count:200
    (QCheck.triple (arb_rel s) (arb_rel s) (arb_rel s))
    (fun (a, b, c) ->
      Relation.equal_as_multiset
        (Combine.union_combine (Combine.union_combine a b) c)
        (Combine.union_combine a (Combine.union_combine b c)))

(* Equation (3): (+)(E1 |+| E2) = (+)((+)(E1) |+| E2) *)
let combine_eq3 =
  let s = battle_schema () in
  QCheck.Test.make ~name:"equation (3)" ~count:200 (QCheck.pair (arb_rel s) (arb_rel s))
    (fun (e1, e2) ->
      Relation.equal_as_multiset
        (Combine.combine (Algebra.union e1 e2))
        (Combine.combine (Algebra.union (Combine.combine e1) e2)))

(* The mutable accumulator agrees with the relational operator. *)
let acc_matches_combine =
  let s = battle_schema () in
  QCheck.Test.make ~name:"Combine.Acc = Combine.combine" ~count:200 (arb_rel s) (fun r ->
      let acc = Combine.Acc.create s in
      Relation.iter (Combine.Acc.add acc) r;
      Relation.equal_as_multiset (Combine.Acc.to_relation acc) (Combine.combine r))

(* Rule (10): R1 (+) R2 = pi(R1 join_K R2) when both are key-functional
   with equal key sets. *)
let test_rule_10 () =
  let s = battle_schema () in
  let r1 = Relation.of_tuples s [ effect_row s 1 5. 2. 0.5; effect_row s 2 1. 0. 1. ] in
  let r2 = Relation.of_tuples s [ effect_row s 1 3. 9. 0.1; effect_row s 2 2. 2. 2. ] in
  let joined = Algebra.join_key r1 r2 in
  let merged =
    List.map
      (fun (a, b) ->
        let out = Tuple.copy a in
        List.iter
          (fun i -> Tuple.set out i (Schema.combine_values s i (Tuple.get a i) (Tuple.get b i)))
          (Schema.effect_indices s);
        out)
      joined
  in
  Relation.iter
    (fun row ->
      let k = Tuple.key s row in
      let m = List.find (fun t -> Tuple.key s t = k) merged in
      Alcotest.(check bool) (Printf.sprintf "key %d" k) true (Tuple.equal row m))
    (Combine.union_combine r1 r2)

(* ------------------------------------------------------------------ *)
(* Algebra *)

let test_algebra_select_extend () =
  let s = battle_schema () in
  let r = Relation.of_tuples s (Array.to_list (units_fixture s)) in
  let sel = Algebra.select ~rand:no_rand (Expr.Cmp (Expr.Gt, Expr.UAttr 4, Expr.Const (v_int 50))) r in
  Alcotest.(check int) "selected" 3 (Relation.cardinality sel);
  let ext = Algebra.extend ~rand:no_rand [ Expr.Binop (Expr.Mul, Expr.UAttr 4, Expr.Const (v_int 2)) ] sel in
  Relation.iter
    (fun row ->
      Alcotest.check value_t "doubled"
        (Value.mul (Tuple.get row 4) (v_int 2))
        (Tuple.get row 8))
    ext

let test_algebra_product_union () =
  let s = battle_schema () in
  let r = Relation.of_tuples s (Array.to_list (units_fixture s)) in
  Alcotest.(check int) "product" 25 (Relation.cardinality (Algebra.product r r));
  Alcotest.(check int) "union" 10 (Relation.cardinality (Algebra.union r r))

let test_algebra_group_agg () =
  let s = battle_schema () in
  let r = Relation.of_tuples s (Array.to_list (units_fixture s)) in
  let groups = Algebra.group_agg ~group:[ 1 ] ~aggs:[ Algebra.Sql_count; Algebra.Sql_sum 4 ] r in
  Alcotest.(check int) "two players" 2 (List.length groups);
  let p1 = List.assoc [ v_int 1 ] groups in
  (match p1 with
  | [ Value.Int c; total ] ->
    Alcotest.(check int) "count" 3 c;
    Alcotest.check value_t "sum" (v_int 120) total
  | _ -> Alcotest.fail "unexpected aggregate shape")

let test_algebra_join_key_dup () =
  let s = battle_schema () in
  let r = Relation.of_tuples s [ effect_row s 1 0. 0. 0.; effect_row s 1 0. 0. 0. ] in
  Alcotest.(check bool) "duplicate key rejected" true
    (try ignore (Algebra.join_key r r); false with Algebra.Algebra_error _ -> true)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "relalg.value",
      [
        tc "arithmetic" `Quick test_value_arith;
        tc "type errors" `Quick test_value_errors;
        tc "equality widening" `Quick test_value_equal_widening;
      ] );
    ( "relalg.schema",
      [
        tc "basics" `Quick test_schema_basics;
        tc "rejections" `Quick test_schema_rejections;
        tc "neutral elements" `Quick test_schema_neutrals;
      ] );
    ( "relalg.tuple",
      [ tc "of_list checks" `Quick test_tuple_of_list; tc "extend/restrict" `Quick test_tuple_extend_restrict ]
    );
    ( "relalg.expr",
      [ tc "evaluation" `Quick test_expr_eval; tc "analysis" `Quick test_expr_analysis ] );
    ( "relalg.predicate",
      [
        tc "classification" `Quick test_predicate_classify;
        tc "orientation flip" `Quick test_predicate_flip;
        tc "of_expr flattening" `Quick test_predicate_of_expr;
      ] );
    ( "relalg.aggregate",
      [
        tc "count/sum" `Quick test_aggregate_count_sum;
        tc "centroid + default" `Quick test_aggregate_centroid_and_default;
        tc "argmin/nearest" `Quick test_aggregate_argmin_nearest;
        tc "stddev" `Quick test_aggregate_stddev;
        tc "empty without default raises" `Quick test_aggregate_empty_no_default;
      ] );
    ( "relalg.combine",
      [
        tc "folds by tag" `Quick test_combine_folds_by_tag;
        qtest combine_idempotent;
        qtest combine_commutative;
        qtest combine_associative;
        qtest combine_eq3;
        qtest acc_matches_combine;
        tc "rule (10) as key join" `Quick test_rule_10;
      ] );
    ( "relalg.algebra",
      [
        tc "select/extend" `Quick test_algebra_select_extend;
        tc "product/union" `Quick test_algebra_product_union;
        tc "group aggregate" `Quick test_algebra_group_agg;
        tc "join duplicate key" `Quick test_algebra_join_key_dup;
      ] );
  ]
