(* Telemetry: registry semantics, span tracer, and the differential
   guarantee the whole subsystem rests on — unit states are bit-identical
   with telemetry off, with metrics on, with span tracing on, and under
   EXPLAIN.  Observation never feeds back into the simulation. *)

open Sgl_util
open Sgl_relalg
open Sgl_engine
open Sgl_battle

(* ------------------------------------------------------------------ *)
(* Registry *)

let registry_counter_gating () =
  let r = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter r "test.c" in
  Alcotest.(check bool) "disabled by default" false (Telemetry.Registry.enabled r);
  Telemetry.Counter.incr c;
  Telemetry.Counter.add c 10;
  Alcotest.(check int) "gated while disabled" 0 (Telemetry.Counter.value c);
  Telemetry.Registry.set_enabled r true;
  Telemetry.Counter.incr c;
  Telemetry.Counter.add c 10;
  Alcotest.(check int) "counts while enabled" 11 (Telemetry.Counter.value c);
  (* set is the one unconditional write: it mirrors engine-owned state
     (rollback restores), so it lands even when the registry is off *)
  Telemetry.Registry.set_enabled r false;
  Telemetry.Counter.set c 7;
  Alcotest.(check int) "set ignores the gate" 7 (Telemetry.Counter.value c);
  Alcotest.(check string) "name" "test.c" (Telemetry.Counter.name c)

let registry_idempotent_registration () =
  let r = Telemetry.Registry.create ~enabled:true () in
  let a = Telemetry.Registry.counter r "test.same" in
  let b = Telemetry.Registry.counter r "test.same" in
  Telemetry.Counter.add a 3;
  (* same handle: EXPLAIN recovers live counters by re-registering names *)
  Alcotest.(check int) "one underlying cell" 3 (Telemetry.Counter.value b);
  let g1 = Telemetry.Registry.gauge r "test.g" in
  let g2 = Telemetry.Registry.gauge r "test.g" in
  Telemetry.Gauge.set g1 2.5;
  Alcotest.(check (float 0.)) "gauge interned" 2.5 (Telemetry.Gauge.value g2)

let registry_reset_keeps_handles () =
  let r = Telemetry.Registry.create ~enabled:true () in
  let c = Telemetry.Registry.counter r "test.c" in
  let h = Telemetry.Registry.histogram r "test.h" in
  Telemetry.Counter.add c 5;
  Telemetry.Histogram.observe h 1.0;
  Telemetry.Registry.reset r;
  Alcotest.(check int) "counter zeroed" 0 (Telemetry.Counter.value c);
  Alcotest.(check int) "histogram zeroed" 0 (Telemetry.Histogram.snapshot h).Telemetry.count;
  (* held handles keep working after reset *)
  Telemetry.Counter.incr c;
  Alcotest.(check int) "handle still live" 1 (Telemetry.Counter.value c)

let registry_histogram () =
  let r = Telemetry.Registry.create ~enabled:true () in
  let h = Telemetry.Registry.histogram r "test.h" in
  List.iter (Telemetry.Histogram.observe h) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  let s = Telemetry.Histogram.snapshot h in
  Alcotest.(check int) "count" 8 s.Telemetry.count;
  Alcotest.(check (float 1e-9)) "mean" 5. s.Telemetry.mean;
  Alcotest.(check (float 1e-9)) "min" 2. s.Telemetry.min;
  Alcotest.(check (float 1e-9)) "max" 9. s.Telemetry.max;
  Alcotest.(check (float 1e-9)) "total" 40. s.Telemetry.total

let registry_listing_and_json () =
  let r = Telemetry.Registry.create ~enabled:true () in
  let b = Telemetry.Registry.counter r "b.second" in
  let a = Telemetry.Registry.counter r "a.first" in
  Telemetry.Counter.add a 1;
  Telemetry.Counter.add b 2;
  Telemetry.Gauge.set (Telemetry.Registry.gauge r "g.one") 1.5;
  Telemetry.Histogram.observe (Telemetry.Registry.histogram r "h.one") 3.;
  Alcotest.(check (list (pair string int)))
    "counters sorted by name"
    [ ("a.first", 1); ("b.second", 2) ]
    (Telemetry.Registry.counters r);
  let json = Telemetry.Registry.to_json r in
  List.iter
    (fun needle ->
      let contains s sub =
        let n = String.length sub in
        let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) (Fmt.str "json mentions %s" needle) true (contains json needle))
    [ "\"counters\""; "\"gauges\""; "\"histograms\""; "\"a.first\""; "\"h.one\"" ]

(* ------------------------------------------------------------------ *)
(* Spans *)

let span_disabled_is_transparent () =
  Telemetry.Span.stop ();
  let ran = ref false in
  let v = Telemetry.Span.with_ "never.recorded" (fun () -> ran := true; 42) in
  Telemetry.Span.instant "never.recorded";
  Alcotest.(check bool) "body ran" true !ran;
  Alcotest.(check int) "value through" 42 v;
  Alcotest.(check int) "nothing recorded" 0 (Telemetry.Span.count ())

let span_records_and_serializes () =
  Telemetry.Span.start ();
  let v =
    Telemetry.Span.with_ ~cat:"outer" "parent" (fun () ->
        Telemetry.Span.with_ ~cat:"inner" "child" (fun () -> ());
        Telemetry.Span.instant ~cat:"mark" "ping";
        17)
  in
  Telemetry.Span.stop ();
  Alcotest.(check int) "value through" 17 v;
  Alcotest.(check int) "three events" 3 (Telemetry.Span.count ());
  let json = Telemetry.Span.to_json () in
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "bare event array" true (String.length json > 0 && json.[0] = '[');
  List.iter
    (fun needle -> Alcotest.(check bool) (Fmt.str "mentions %s" needle) true (contains json needle))
    [ "\"parent\""; "\"child\""; "\"ping\""; "\"ph\"" ];
  (* stop is sticky: further spans don't record *)
  Telemetry.Span.with_ "after.stop" (fun () -> ());
  Alcotest.(check int) "still three" 3 (Telemetry.Span.count ())

let span_survives_exceptions () =
  Telemetry.Span.start ();
  (try Telemetry.Span.with_ "boom" (fun () -> failwith "boom") with Failure _ -> ());
  Telemetry.Span.stop ();
  Alcotest.(check int) "span recorded despite raise" 1 (Telemetry.Span.count ())

(* ------------------------------------------------------------------ *)
(* Trace satellite: idempotent close, Trace_error on I/O after close *)

let trace_close_idempotent () =
  let path = Filename.temp_file "sgl_trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let scenario = Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 5) () in
      let sim = Scenario.simulation ~evaluator:Simulation.Indexed scenario in
      let tr =
        Trace.create ~path ~schema:(Simulation.schema sim) ~attrs:[ "key"; "health" ]
      in
      Trace.record tr ~tick:0 (Simulation.units sim);
      Trace.close tr;
      Trace.close tr (* second close is a no-op, not an error *);
      Alcotest.check_raises "record after close"
        (Trace.Trace_error "trace: already closed") (fun () ->
          Trace.record tr ~tick:1 (Simulation.units sim)))

(* ------------------------------------------------------------------ *)
(* The differential guarantee *)

let sorted_units (sim : Simulation.t) : Tuple.t array =
  let s = Simulation.schema sim in
  let out = Array.map Tuple.copy (Simulation.units sim) in
  Array.sort (fun a b -> compare (Tuple.key s a) (Tuple.key s b)) out;
  out

let check_states ~(msg : string) (expected : Tuple.t array) (got : Tuple.t array) =
  Alcotest.(check int) (msg ^ ": population") (Array.length expected) (Array.length got);
  Array.iteri
    (fun i e ->
      if compare e got.(i) <> 0 then
        Alcotest.failf "%s: unit %d diverged@.expected %s@.got      %s" msg i
          (Fmt.str "%a" Tuple.pp e)
          (Fmt.str "%a" Tuple.pp got.(i)))
    expected

(* Same scenario, same seed, four observability configurations; the unit
   states must agree bit for bit. *)
let telemetry_is_invisible () =
  let run ~metrics ~spans ~explain =
    Telemetry.set_enabled false;
    Telemetry.reset ();
    Telemetry.Span.stop ();
    if metrics then Telemetry.set_enabled true;
    if spans then Telemetry.Span.start ();
    let scenario = Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 30) () in
    let sim = Scenario.simulation ~seed:11 ~evaluator:Simulation.Indexed scenario in
    Simulation.run sim ~ticks:15;
    if explain then begin
      let prog = Scripts.compile () in
      let text =
        Sgl_qopt.Eval.explain ~schema:(Simulation.schema sim)
          ~aggregates:prog.Sgl_lang.Core_ir.aggregates ()
      in
      Alcotest.(check bool) "explain non-empty" true (String.length text > 0)
    end;
    let states = sorted_units sim in
    if spans then begin
      Alcotest.(check bool) "spans recorded" true (Telemetry.Span.count () > 0);
      Telemetry.Span.stop ()
    end;
    if metrics then begin
      let total = List.fold_left (fun acc (_, v) -> acc + v) 0 (Telemetry.Registry.counters Telemetry.default) in
      Alcotest.(check bool) "metrics recorded" true (total > 0);
      Telemetry.set_enabled false
    end;
    states
  in
  let baseline = run ~metrics:false ~spans:false ~explain:false in
  check_states ~msg:"metrics vs off" baseline (run ~metrics:true ~spans:false ~explain:false);
  check_states ~msg:"spans vs off" baseline (run ~metrics:false ~spans:true ~explain:false);
  check_states ~msg:"explain vs off" baseline (run ~metrics:true ~spans:false ~explain:true)

(* The per-simulation registry: report counters live in telemetry now, and
   the two views must agree. *)
let simulation_registry_mirrors_report () =
  let scenario = Scenario.setup ~density:0.02 ~per_side:(Scenario.standard_mix 25) () in
  let sim = Scenario.simulation ~seed:3 ~evaluator:Simulation.Indexed scenario in
  Simulation.run sim ~ticks:20;
  let r = Simulation.report sim in
  let counters = Telemetry.Registry.counters (Simulation.telemetry sim) in
  let value name = try List.assoc name counters with Not_found -> -1 in
  Alcotest.(check int) "sim.deaths" r.Simulation.deaths (value "sim.deaths");
  Alcotest.(check int) "sim.resurrections" r.Simulation.resurrections (value "sim.resurrections");
  Alcotest.(check int) "sim.rollbacks" r.Simulation.rollbacks (value "sim.rollbacks");
  Alcotest.(check int) "sim.faults" (Simulation.fault_count sim) (value "sim.faults")

let suite =
  let tc = Alcotest.test_case in
  [
    ( "telemetry.registry",
      [
        tc "counter gating" `Quick registry_counter_gating;
        tc "idempotent registration" `Quick registry_idempotent_registration;
        tc "reset keeps handles" `Quick registry_reset_keeps_handles;
        tc "histogram snapshot" `Quick registry_histogram;
        tc "listing and json" `Quick registry_listing_and_json;
      ] );
    ( "telemetry.span",
      [
        tc "disabled is transparent" `Quick span_disabled_is_transparent;
        tc "records and serializes" `Quick span_records_and_serializes;
        tc "survives exceptions" `Quick span_survives_exceptions;
      ] );
    ("telemetry.trace", [ tc "close idempotent" `Quick trace_close_idempotent ]);
    ( "telemetry.differential",
      [
        tc "bit-identical on/off/spans/explain" `Slow telemetry_is_invisible;
        tc "sim registry mirrors report" `Quick simulation_registry_mirrors_report;
      ] );
  ]
