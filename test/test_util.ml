(* Tests for the utility substrate. *)

open Sgl_util

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Prng *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for i = 0 to 100 do
    check_int "same stream" (Prng.int a ~bound:1000 [ i ]) (Prng.int b ~bound:1000 [ i ])
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for i = 0 to 99 do
    if Prng.int a ~bound:1_000_000 [ i ] = Prng.int b ~bound:1_000_000 [ i ] then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 5)

let test_prng_bounds () =
  let t = Prng.create 7 in
  for i = 0 to 999 do
    let v = Prng.int t ~bound:17 [ i ] in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17);
    let f = Prng.float t [ i ] in
    Alcotest.(check bool) "float in range" true (f >= 0. && f < 1.)
  done

let test_prng_bad_bound () =
  let t = Prng.create 7 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int t ~bound:0 [ 1 ]))

let test_script_random_stable_within_tick () =
  let t = Prng.create 5 in
  check_int "stable" (Prng.script_random t ~tick:3 ~key:9 1) (Prng.script_random t ~tick:3 ~key:9 1);
  Alcotest.(check bool)
    "varies across ticks" true
    (let same = ref 0 in
     for tick = 0 to 50 do
       if Prng.script_random t ~tick ~key:9 1 = Prng.script_random t ~tick:(tick + 1) ~key:9 1
       then incr same
     done;
     !same < 3)

let test_shuffle_is_permutation () =
  let t = Prng.create 11 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle_in_place t [ 1; 2 ] arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i)) sorted

(* ------------------------------------------------------------------ *)
(* Vec2 *)

let test_vec2_arithmetic () =
  let a = Vec2.make 3. 4. in
  check_float "norm" 5. (Vec2.norm a);
  check_float "dist" 5. (Vec2.dist Vec2.zero a);
  let b = Vec2.add a (Vec2.make 1. (-2.)) in
  check_float "add x" 4. b.Vec2.x;
  check_float "add y" 2. b.Vec2.y;
  let n = Vec2.normalize a in
  check_float "unit" 1. (Vec2.norm n)

let test_vec2_normalize_zero () =
  Alcotest.(check bool) "zero stays zero" true (Vec2.equal Vec2.zero (Vec2.normalize Vec2.zero))

let test_vec2_clamp () =
  let a = Vec2.make 30. 40. in
  check_float "clamped" 5. (Vec2.norm (Vec2.clamp_norm 5. a));
  let b = Vec2.make 0.3 0.4 in
  check_float "short unchanged" (Vec2.norm b) (Vec2.norm (Vec2.clamp_norm 5. b))

(* ------------------------------------------------------------------ *)
(* Varray *)

let test_varray_push_get () =
  let v = Varray.create 0 in
  for i = 0 to 99 do
    Varray.push v (i * i)
  done;
  check_int "length" 100 (Varray.length v);
  check_int "get" 49 (Varray.get v 7);
  Varray.set v 7 1;
  check_int "set" 1 (Varray.get v 7)

let test_varray_bounds () =
  let v = Varray.create 0 in
  Varray.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Varray.get: index out of bounds")
    (fun () -> ignore (Varray.get v 1))

let test_varray_pop_clear () =
  let v = Varray.of_array 0 [| 1; 2; 3 |] in
  check_int "pop" 3 (Varray.pop v);
  check_int "len" 2 (Varray.length v);
  Varray.clear v;
  check_int "cleared" 0 (Varray.length v)

let test_varray_swap_remove () =
  let v = Varray.of_array 0 [| 10; 20; 30; 40 |] in
  Varray.swap_remove v 1;
  let l = List.sort compare (Varray.to_list v) in
  Alcotest.(check (list int)) "removed 20" [ 10; 30; 40 ] l

let test_varray_fold_iter () =
  let v = Varray.of_array 0 [| 1; 2; 3; 4 |] in
  check_int "fold" 10 (Varray.fold_left ( + ) 0 v);
  Alcotest.(check bool) "exists" true (Varray.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Varray.exists (fun x -> x = 9) v)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_welford () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_float "mean" 5. (Stats.mean s);
  check_float "min" 2. (Stats.min_value s);
  check_float "max" 9. (Stats.max_value s);
  check_int "count" 8 (Stats.count s);
  (* Sample variance of this classic data set is 32/7. *)
  check_float "variance" (32. /. 7.) (Stats.variance s)

let test_stats_population () =
  let arr = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "pop stddev" 2. (Stats.population_stddev_of arr)

let test_stats_empty () =
  let s = Stats.create () in
  check_int "count" 0 (Stats.count s);
  Alcotest.(check bool) "mean is nan" true (Float.is_nan (Stats.mean s));
  Alcotest.(check bool) "min is nan" true (Float.is_nan (Stats.min_value s));
  Alcotest.(check bool) "max is nan" true (Float.is_nan (Stats.max_value s));
  check_float "variance" 0. (Stats.variance s);
  check_float "total" 0. (Stats.total s)

let test_stats_single_sample () =
  let s = Stats.create () in
  Stats.add s 3.5;
  check_int "count" 1 (Stats.count s);
  check_float "mean" 3.5 (Stats.mean s);
  check_float "min" 3.5 (Stats.min_value s);
  check_float "max" 3.5 (Stats.max_value s);
  (* fewer than two samples: sample variance defined as 0 *)
  check_float "variance" 0. (Stats.variance s);
  check_float "stddev" 0. (Stats.stddev s)

(* Welford against the naive two-pass reference on a fixed data set. *)
let test_stats_vs_two_pass () =
  let data = [| 1.25; -3.5; 0.; 7.75; 2.5; -0.125; 4.; 4.; -8.25; 3. |] in
  let n = Array.length data in
  let s = Stats.create () in
  Array.iter (Stats.add s) data;
  let mean = Array.fold_left ( +. ) 0. data /. float_of_int n in
  let sq = Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. data in
  let sample_variance = sq /. float_of_int (n - 1) in
  Alcotest.(check (float 1e-12)) "mean" mean (Stats.mean s);
  Alcotest.(check (float 1e-12)) "variance" sample_variance (Stats.variance s)

let test_stats_merge_basic () =
  (* merging two accumulators == folding all samples into one *)
  let xs = [ 2.; 4.; 4. ] and ys = [ 4.; 5.; 5.; 7.; 9. ] in
  let a = Stats.create () and b = Stats.create () and all = Stats.create () in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add all) (xs @ ys);
  Stats.merge ~into:a b;
  check_int "count" (Stats.count all) (Stats.count a);
  check_float "mean" (Stats.mean all) (Stats.mean a);
  check_float "variance" (Stats.variance all) (Stats.variance a);
  check_float "min" (Stats.min_value all) (Stats.min_value a);
  check_float "max" (Stats.max_value all) (Stats.max_value a);
  (* merging into an empty accumulator copies; merging an empty one is a
     no-op; src is never mutated *)
  let empty = Stats.create () in
  Stats.merge ~into:empty b;
  check_int "into empty: count" (List.length ys) (Stats.count empty);
  check_float "into empty: mean" (Stats.mean b) (Stats.mean empty);
  let before = Stats.count b in
  Stats.merge ~into:b (Stats.create ());
  check_int "empty src: no-op" before (Stats.count b)

(* Merge-order invariance: any partition of the samples across any number
   of accumulators, merged in any order, agrees with the single-pass fold
   (up to float rounding) — the law the cross-lane histogram aggregation
   rests on. *)
let stats_merge_order_invariance =
  QCheck.Test.make ~name:"Stats.merge is partition- and order-invariant" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 40) (float_bound_inclusive 100.))
        (pair small_nat bool))
    (fun (samples, (cut_seed, reverse)) ->
      let reference = Stats.create () in
      List.iter (Stats.add reference) samples;
      (* split into up to 4 parts at a pseudo-random boundary *)
      let parts = Array.init 4 (fun _ -> Stats.create ()) in
      List.iteri (fun i x -> Stats.add parts.((i + cut_seed) mod 4) x) samples;
      let order = if reverse then [ 3; 2; 1; 0 ] else [ 0; 1; 2; 3 ] in
      let acc = Stats.create () in
      List.iter (fun i -> Stats.merge ~into:acc (Stats.copy parts.(i))) order;
      let close a b = Float.abs (a -. b) <= 1e-9 *. (1. +. Float.abs a) in
      Stats.count acc = Stats.count reference
      && close (Stats.mean acc) (Stats.mean reference)
      && close (Stats.variance acc) (Stats.variance reference)
      && close (Stats.min_value acc) (Stats.min_value reference)
      && close (Stats.max_value acc) (Stats.max_value reference))

(* ------------------------------------------------------------------ *)
(* Percentiles *)

let test_percentile_basic () =
  let s = Stats.create () in
  for i = 1 to 1000 do
    Stats.add s (float_of_int i)
  done;
  (* log-bucketed: the answer is within one bucket width (2^(1/8) ~ 9%)
     of the exact quantile *)
  let check_close name expect got =
    if Float.abs (got -. expect) > 0.1 *. expect then
      Alcotest.failf "%s: expected ~%g, got %g" name expect got
  in
  check_close "p50" 500. (Stats.percentile s 0.50);
  check_close "p90" 900. (Stats.percentile s 0.90);
  check_close "p99" 990. (Stats.percentile s 0.99);
  (* q <= 0 / q >= 1 are the exact extremes *)
  check_float "p0 is min" 1. (Stats.percentile s 0.);
  check_float "p100 is max" 1000. (Stats.percentile s 1.)

let test_percentile_edges () =
  let s = Stats.create () in
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (Stats.percentile s 0.5));
  (* non-positive samples land in the sign bucket and report the minimum *)
  Stats.add s (-4.);
  Stats.add s 0.;
  Stats.add s 8.;
  check_float "p50 over sign bucket" (-4.) (Stats.percentile s 0.5);
  check_float "p100" 8. (Stats.percentile s 1.);
  (* a single sample answers every quantile with itself (clamped) *)
  let one = Stats.create () in
  Stats.add one 42.;
  check_float "single p50" 42. (Stats.percentile one 0.5);
  check_float "single p99" 42. (Stats.percentile one 0.99);
  (* reset clears the buckets too *)
  Stats.reset s;
  Alcotest.(check bool) "reset -> nan" true (Float.is_nan (Stats.percentile s 0.9))

(* Percentiles come from a fixed bucket grid, so merging is an exact count
   sum: any partition, merged in any order, gives BIT-IDENTICAL
   percentiles — stronger than the float-rounding tolerance Welford
   needs. *)
let percentile_merge_invariance =
  QCheck.Test.make ~name:"Stats.percentile is merge-invariant (bit-exact)" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 60) (float_bound_inclusive 1e6))
        (pair small_nat bool))
    (fun (samples, (cut_seed, reverse)) ->
      let reference = Stats.create () in
      List.iter (Stats.add reference) samples;
      let parts = Array.init 4 (fun _ -> Stats.create ()) in
      List.iteri (fun i x -> Stats.add parts.((i + cut_seed) mod 4) x) samples;
      let order = if reverse then [ 3; 2; 1; 0 ] else [ 0; 1; 2; 3 ] in
      let acc = Stats.create () in
      List.iter (fun i -> Stats.merge ~into:acc (Stats.copy parts.(i))) order;
      List.for_all
        (fun q ->
          Int64.equal
            (Int64.bits_of_float (Stats.percentile acc q))
            (Int64.bits_of_float (Stats.percentile reference q)))
        [ 0.; 0.25; 0.5; 0.9; 0.99; 1. ])

(* ------------------------------------------------------------------ *)
(* Search *)

let test_search_bounds () =
  let arr = [| 1.; 2.; 2.; 2.; 5.; 8. |] in
  check_int "lower 2" 1 (Search.lower_bound arr 2.);
  check_int "upper 2" 4 (Search.upper_bound arr 2.);
  check_int "lower 0" 0 (Search.lower_bound arr 0.);
  check_int "lower 9" 6 (Search.lower_bound arr 9.);
  check_int "count [2,5]" 4 (Search.count_in_range arr ~lo:2. ~hi:5.);
  check_int "count empty" 0 (Search.count_in_range arr ~lo:3. ~hi:4.)

let search_matches_scan =
  QCheck.Test.make ~name:"lower/upper bound match linear scan" ~count:200
    QCheck.(pair (list (float_bound_inclusive 100.)) (float_bound_inclusive 100.))
    (fun (l, x) ->
      let arr = Array.of_list (List.sort compare l) in
      let lower = Search.lower_bound arr x and upper = Search.upper_bound arr x in
      let scan_lower = Array.fold_left (fun acc v -> if v < x then acc + 1 else acc) 0 arr in
      let scan_upper = Array.fold_left (fun acc v -> if v <= x then acc + 1 else acc) 0 arr in
      lower = scan_lower && upper = scan_upper)

let timer_accumulates () =
  let t = Timer.create () in
  Timer.start t;
  Timer.stop t;
  Alcotest.(check bool) "non-negative" true (Timer.elapsed t >= 0.);
  Alcotest.check_raises "double stop" (Invalid_argument "Timer.stop: not running") (fun () ->
      Timer.stop t)

(* The clock behind the timers is monotonic: successive readings never go
   backwards (Unix.gettimeofday, the previous source, can). *)
let timer_monotonic () =
  let prev = ref (Timer.now_ns ()) in
  for _ = 1 to 10_000 do
    let t = Timer.now_ns () in
    if Int64.compare t !prev < 0 then Alcotest.fail "now_ns went backwards";
    prev := t
  done;
  let a = Timer.now () in
  let b = Timer.now () in
  Alcotest.(check bool) "now () nondecreasing" true (b >= a)

let suite =
  let tc = Alcotest.test_case in
  [
    ( "util.prng",
      [
        tc "deterministic" `Quick test_prng_deterministic;
        tc "seed sensitivity" `Quick test_prng_seed_sensitivity;
        tc "bounds" `Quick test_prng_bounds;
        tc "bad bound" `Quick test_prng_bad_bound;
        tc "script random stable within tick" `Quick test_script_random_stable_within_tick;
        tc "shuffle is a permutation" `Quick test_shuffle_is_permutation;
      ] );
    ( "util.vec2",
      [
        tc "arithmetic" `Quick test_vec2_arithmetic;
        tc "normalize zero" `Quick test_vec2_normalize_zero;
        tc "clamp norm" `Quick test_vec2_clamp;
      ] );
    ( "util.varray",
      [
        tc "push/get/set" `Quick test_varray_push_get;
        tc "bounds checking" `Quick test_varray_bounds;
        tc "pop and clear" `Quick test_varray_pop_clear;
        tc "swap_remove" `Quick test_varray_swap_remove;
        tc "fold/iter/exists" `Quick test_varray_fold_iter;
      ] );
    ( "util.stats",
      [
        tc "welford" `Quick test_stats_welford;
        tc "population stddev" `Quick test_stats_population;
        tc "empty accumulator" `Quick test_stats_empty;
        tc "single sample" `Quick test_stats_single_sample;
        tc "welford vs two-pass reference" `Quick test_stats_vs_two_pass;
        tc "merge" `Quick test_stats_merge_basic;
        QCheck_alcotest.to_alcotest stats_merge_order_invariance;
        tc "percentile basic" `Quick test_percentile_basic;
        tc "percentile edges" `Quick test_percentile_edges;
        QCheck_alcotest.to_alcotest percentile_merge_invariance;
      ] );
    ( "util.search",
      [
        tc "bounds on duplicates" `Quick test_search_bounds;
        QCheck_alcotest.to_alcotest search_matches_scan;
      ] );
    ( "util.timer",
      [ tc "accumulates" `Quick timer_accumulates; tc "monotonic" `Quick timer_monotonic ] );
  ]
